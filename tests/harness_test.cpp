//===- tests/harness_test.cpp - Parallel experiment driver ----------------===//
//
// The driver's contract: a plan expands in a deterministic order, runs on
// any number of workers, and yields bit-identical per-cell simulator
// statistics regardless of the worker count; correctness failures
// (workload self-checks, baseline mismatches) surface as recorded
// failures rather than stderr-only warnings.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/JsonWriter.h"
#include "harness/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>

using namespace spf;
using namespace spf::harness;
using namespace spf::workloads;

namespace {

// -- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Count{0};
  for (unsigned I = 0; I != 100; ++I)
    Pool.async([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Count{0};
  Pool.async([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1u);
  // A second batch after a completed wait must work too.
  for (unsigned I = 0; I != 10; ++I)
    Pool.async([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 11u);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool Pool(3);
  Pool.wait(); // Nothing queued: must not block.
  EXPECT_EQ(Pool.threadCount(), 3u);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::atomic<bool> Ran{false};
  Pool.async([&Ran] { Ran = true; });
  Pool.wait();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<unsigned> Count{0};
  {
    ThreadPool Pool(2);
    for (unsigned I = 0; I != 50; ++I)
      Pool.async([&Count] { Count.fetch_add(1); });
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(Count.load(), 50u);
}

/// Regression test for the exception-safety bug: a throwing task used to
/// leak its ActiveTasks increment (deadlocking wait()) and kill the
/// worker via std::terminate. The pool must absorb the throw, count it,
/// and stay fully usable.
TEST(ThreadPoolTest, ThrowingTaskDoesNotWedgeThePool) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Count{0};
  for (unsigned I = 0; I != 20; ++I) {
    Pool.async([&Count, I] {
      if (I % 4 == 0)
        throw std::runtime_error("task blew up");
      Count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  Pool.wait(); // Must return despite 5 of the 20 tasks throwing.
  EXPECT_EQ(Count.load(), 15u);
  EXPECT_EQ(Pool.uncaughtExceptions(), 5u);

  // The pool remains usable after the throws: same workers, new batch.
  for (unsigned I = 0; I != 10; ++I)
    Pool.async([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 25u);
  EXPECT_EQ(Pool.uncaughtExceptions(), 5u);
}

TEST(ThreadPoolTest, NonExceptionThrowIsAbsorbedToo) {
  ThreadPool Pool(1);
  std::atomic<bool> Ran{false};
  Pool.async([] { throw 42; }); // Not derived from std::exception.
  Pool.async([&Ran] { Ran = true; });
  Pool.wait();
  EXPECT_TRUE(Ran.load());
  EXPECT_EQ(Pool.uncaughtExceptions(), 1u);
}

TEST(DefaultJobsTest, HonorsSpfJobsWhenPositive) {
  const char *Old = std::getenv("SPF_JOBS");
  std::string Saved = Old ? Old : "";

  setenv("SPF_JOBS", "3", 1);
  EXPECT_EQ(defaultJobs(), 3u);
  setenv("SPF_JOBS", "1", 1);
  EXPECT_EQ(defaultJobs(), 1u);
  // Garbage and non-positive values fall back to a sane default.
  setenv("SPF_JOBS", "0", 1);
  EXPECT_GE(defaultJobs(), 1u);
  setenv("SPF_JOBS", "banana", 1);
  EXPECT_GE(defaultJobs(), 1u);
  unsetenv("SPF_JOBS");
  EXPECT_GE(defaultJobs(), 1u);

  if (Old)
    setenv("SPF_JOBS", Saved.c_str(), 1);
}

// -- Plan expansion --------------------------------------------------------

TEST(ExperimentPlanTest, SweepExpandsMachineMajorWithBaselineChecks) {
  ExperimentPlan Plan;
  std::vector<const WorkloadSpec *> Specs = {findWorkload("jess"),
                                             findWorkload("db")};
  ASSERT_TRUE(Specs[0] && Specs[1]);
  std::vector<Algorithm> Algos = {Algorithm::Baseline, Algorithm::Inter,
                                  Algorithm::InterIntra};
  std::vector<unsigned> Idx = Plan.addSweep(
      Specs, Algos,
      {(*sim::MachineConfig::byName("pentium4")), (*sim::MachineConfig::byName("athlonmp"))},
      WorkloadConfig(), "g");

  ASSERT_EQ(Plan.size(), 12u); // 2 machines x 2 workloads x 3 algorithms.
  ASSERT_EQ(Idx.size(), 12u);
  for (unsigned I = 0; I != 12; ++I)
    EXPECT_EQ(Idx[I], I); // Fresh plan: indices are 0..11 in order.

  // Machine-major, then workload, then algorithm.
  const std::vector<ExperimentCell> &C = Plan.cells();
  EXPECT_EQ(C[0].Spec->Name, "jess");
  EXPECT_EQ(C[0].Opt.Algo, Algorithm::Baseline);
  EXPECT_EQ(C[2].Spec->Name, "jess");
  EXPECT_EQ(C[2].Opt.Algo, Algorithm::InterIntra);
  EXPECT_EQ(C[3].Spec->Name, "db");
  EXPECT_EQ(C[6].Opt.Machine.Name, sim::MachineConfig::byName("athlonmp")->Name);

  // Every non-baseline cell checks against its own workload's baseline on
  // the same machine.
  EXPECT_FALSE(C[0].CheckAgainst.has_value());
  EXPECT_EQ(C[1].CheckAgainst, std::optional<unsigned>(0));
  EXPECT_EQ(C[2].CheckAgainst, std::optional<unsigned>(0));
  EXPECT_EQ(C[4].CheckAgainst, std::optional<unsigned>(3));
  EXPECT_EQ(C[7].CheckAgainst, std::optional<unsigned>(6));
  EXPECT_EQ(C[11].CheckAgainst, std::optional<unsigned>(9));
}

TEST(ExperimentPlanTest, NoBaselineMeansNoChecks) {
  ExperimentPlan Plan;
  Plan.addSweep({findWorkload("jess")}, {Algorithm::Inter,
                                         Algorithm::InterIntra},
                {(*sim::MachineConfig::byName("pentium4"))}, WorkloadConfig());
  for (const ExperimentCell &C : Plan.cells())
    EXPECT_FALSE(C.CheckAgainst.has_value());
}

TEST(ExperimentPlanTest, EmptyPlanRunsToAnOkResult) {
  ExperimentPlan Plan;
  ExperimentResult R = runPlan(Plan, 4);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Cells.empty());
}

// -- Parallel == serial, bit for bit ---------------------------------------

WorkloadConfig tinyConfig() {
  WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  return Cfg;
}

/// The acceptance criterion for the parallel driver: the same plan on 1
/// and on 8 workers yields bit-identical per-cell simulator statistics.
/// (JIT wall-clock times are real timer readings and are exempt.)
TEST(RunPlanTest, EightWorkersMatchOneWorkerBitForBit) {
  ExperimentPlan Plan;
  std::vector<const WorkloadSpec *> Specs = {
      findWorkload("jess"), findWorkload("db"), findWorkload("Euler")};
  ASSERT_TRUE(Specs[0] && Specs[1] && Specs[2]);
  Plan.addSweep(
      Specs, {Algorithm::Baseline, Algorithm::Inter, Algorithm::InterIntra},
      {(*sim::MachineConfig::byName("pentium4")), (*sim::MachineConfig::byName("athlonmp"))},
      tinyConfig(), "determinism");
  ASSERT_EQ(Plan.size(), 18u);

  ExperimentResult Serial = runPlan(Plan, 1);
  ExperimentResult Parallel = runPlan(Plan, 8);
  EXPECT_TRUE(Serial.ok());
  EXPECT_TRUE(Parallel.ok());
  ASSERT_EQ(Serial.Cells.size(), Parallel.Cells.size());

  for (unsigned I = 0; I != Plan.size(); ++I) {
    const RunResult &S = Serial.run(I);
    const RunResult &P = Parallel.run(I);
    std::string Tag = Plan.cells()[I].Spec->Name + std::string(" cell ") +
                      std::to_string(I);
    EXPECT_TRUE(Serial.Cells[I].Ran && Parallel.Cells[I].Ran) << Tag;
    EXPECT_EQ(S.CompiledCycles, P.CompiledCycles) << Tag;
    EXPECT_EQ(S.Retired, P.Retired) << Tag;
    EXPECT_EQ(S.ReturnValue, P.ReturnValue) << Tag;
    EXPECT_EQ(S.SelfCheckOk, P.SelfCheckOk) << Tag;
    EXPECT_EQ(S.Mem.Loads, P.Mem.Loads) << Tag;
    EXPECT_EQ(S.Mem.Stores, P.Mem.Stores) << Tag;
    EXPECT_EQ(S.Mem.L1LoadMisses, P.Mem.L1LoadMisses) << Tag;
    EXPECT_EQ(S.Mem.L2LoadMisses, P.Mem.L2LoadMisses) << Tag;
    EXPECT_EQ(S.Mem.DtlbLoadMisses, P.Mem.DtlbLoadMisses) << Tag;
    EXPECT_EQ(S.Mem.SwPrefetchesIssued, P.Mem.SwPrefetchesIssued) << Tag;
    EXPECT_EQ(S.Mem.SwPrefetchesCancelled, P.Mem.SwPrefetchesCancelled)
        << Tag;
    EXPECT_EQ(S.Mem.GuardedLoads, P.Mem.GuardedLoads) << Tag;
    EXPECT_EQ(S.Exec.Retired, P.Exec.Retired) << Tag;
    EXPECT_EQ(S.Exec.PrefetchRelated, P.Exec.PrefetchRelated) << Tag;
    EXPECT_EQ(S.Exec.Calls, P.Exec.Calls) << Tag;
    EXPECT_EQ(S.Exec.Allocations, P.Exec.Allocations) << Tag;
    EXPECT_EQ(S.Exec.GcRuns, P.Exec.GcRuns) << Tag;
    EXPECT_EQ(S.Prefetch.CodeGen.SpecLoads, P.Prefetch.CodeGen.SpecLoads)
        << Tag;
    EXPECT_EQ(S.Prefetch.CodeGen.Prefetches, P.Prefetch.CodeGen.Prefetches)
        << Tag;
  }
}

// -- Failure propagation ---------------------------------------------------

/// A copy of \p Name whose built workload expects a corrupted return
/// value, so its self-check must fail.
WorkloadSpec corruptedSpec(const char *Name) {
  const WorkloadSpec *Orig = findWorkload(Name);
  EXPECT_NE(Orig, nullptr);
  WorkloadSpec Bad = *Orig;
  Bad.Name = std::string(Name) + "<corrupted>";
  std::function<BuiltWorkload(const WorkloadConfig &)> Build = Bad.Build;
  Bad.Build = [Build](const WorkloadConfig &Cfg) {
    BuiltWorkload W = Build(Cfg);
    W.Expected = W.Expected ? *W.Expected + 1 : 1;
    return W;
  };
  return Bad;
}

TEST(RunPlanTest, SelfCheckFailureIsRecorded) {
  WorkloadSpec Bad = corruptedSpec("jess");
  ExperimentPlan Plan;
  ExperimentCell Cell;
  Cell.Group = "fail";
  Cell.Spec = &Bad;
  Cell.Opt.Config = tinyConfig();
  Plan.add(std::move(Cell));

  ExperimentResult R = runPlan(Plan, 2);
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_NE(R.Failures[0].find("jess<corrupted>"), std::string::npos);
  EXPECT_NE(R.Failures[0].find("self-check failed"), std::string::npos);
  EXPECT_FALSE(R.run(0).SelfCheckOk);
}

TEST(RunPlanTest, BaselineMismatchIsRecorded) {
  // Two different workloads with a CheckAgainst link between them: their
  // return values differ, so the driver must flag the second cell.
  ExperimentPlan Plan;
  ExperimentCell A;
  A.Spec = findWorkload("compress");
  A.Opt.Config = tinyConfig();
  unsigned AIdx = Plan.add(std::move(A));
  ExperimentCell B;
  B.Spec = findWorkload("jess");
  B.Opt.Config = tinyConfig();
  B.CheckAgainst = AIdx;
  Plan.add(std::move(B));

  ExperimentResult R = runPlan(Plan, 2);
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_NE(R.Failures[0].find("different result"), std::string::npos);
}

// -- JSON report -----------------------------------------------------------

TEST(JsonReportTest, ReportCarriesTheCellStats) {
  ExperimentPlan Plan;
  Plan.addSweep({findWorkload("jess")},
                {Algorithm::Baseline, Algorithm::InterIntra},
                {(*sim::MachineConfig::byName("pentium4"))}, tinyConfig(), "json");
  ExperimentResult R = runPlan(Plan, 2);
  ASSERT_TRUE(R.ok());

  std::ostringstream OS;
  writeJsonReport(OS, Plan, R, 0.05, 2);
  std::string S = OS.str();

  EXPECT_NE(S.find("\"schema\":\"spf-sweep-v2\""), std::string::npos);
  EXPECT_NE(S.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(S.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(S.find("\"group\":\"json\""), std::string::npos);
  EXPECT_NE(S.find("\"workload\":\"jess\""), std::string::npos);
  EXPECT_NE(S.find("\"algorithm\":\"INTER+INTRA\""), std::string::npos);
  EXPECT_NE(S.find("\"ran\":true"), std::string::npos);
  EXPECT_NE(S.find("\"attempts\":1"), std::string::npos);
  EXPECT_NE(S.find("\"guarded_load_faults\":"), std::string::npos);
  EXPECT_NE(S.find("\"failures\":[]"), std::string::npos);
  // Clean run: nothing quarantined.
  EXPECT_NE(S.find("\"quarantine\":[]"), std::string::npos);
  // The recorded cycles round-trip exactly.
  EXPECT_NE(S.find("\"cycles\":" + std::to_string(R.run(0).CompiledCycles)),
            std::string::npos);
}

TEST(JsonWriterTest, EscapesAndNests) {
  std::ostringstream OS;
  {
    JsonWriter J(OS);
    J.beginObject();
    J.key("s").value("a\"b\\c\n");
    J.key("n").value(static_cast<uint64_t>(42));
    J.key("arr").beginArray();
    J.value(true);
    J.value(false);
    J.endArray();
    J.endObject();
  }
  EXPECT_EQ(OS.str(), "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":42,"
                      "\"arr\":[true,false]}");
}

/// Pathological strings (a quarantined cell's error message could carry
/// anything an exception what() produces): every control character must
/// be escaped so the report stays machine-parseable.
TEST(JsonWriterTest, EscapesEveryControlCharacter) {
  std::ostringstream OS;
  {
    JsonWriter J(OS);
    std::string Nasty = "a\rb\x01" "c\x1f"; // Split: \x is greedy.
    Nasty.push_back('\0'); // Embedded NUL must be escaped, not truncate.
    Nasty += "d\tz";
    J.beginObject();
    J.key("err").value(Nasty);
    J.endObject();
  }
  EXPECT_EQ(OS.str(),
            "{\"err\":\"a\\u000db\\u0001c\\u001f\\u0000d\\tz\"}");

  // No raw byte below 0x20 may survive in any output.
  for (char C : OS.str())
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u);
}

} // namespace
