//===- tests/obs_test.cpp - Observability subsystem -----------------------===//
//
// Contracts under test: StatRegistry counters are exact under concurrent
// increments and handles survive reset(); histograms bucket by powers of
// two and the Prometheus dump is cumulative; Tracer spans serialize to
// valid Chrome trace_event JSON and survive the worker wire format; the
// prefetch pipeline records attributable decision events for every loop
// it visits (including fault-degraded ones); and enabling observability
// never changes a run's statistics.
//
//===----------------------------------------------------------------------===//

#include "TestKernels.h"
#include "core/PrefetchPass.h"
#include "harness/Experiment.h"
#include "harness/Journal.h"
#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"
#include "obs/DecisionLog.h"
#include "obs/Obs.h"
#include "opt/Governor.h"
#include "obs/StatRegistry.h"
#include "obs/Tracer.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>

using namespace spf;
using namespace spf::obs;
using namespace spf::testkernels;

namespace {

// -- StatRegistry -----------------------------------------------------------

TEST(StatRegistryTest, ConcurrentIncrementsAreExact) {
  StatRegistry R;
  Counter &C = R.counter("spf_test_total");
  std::vector<std::thread> Threads;
  constexpr unsigned NumThreads = 8, PerThread = 20000;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (unsigned I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(NumThreads) * PerThread);
  // Lookup by name returns the same handle.
  EXPECT_EQ(&R.counter("spf_test_total"), &C);
}

TEST(StatRegistryTest, HistogramBucketsByBitWidth) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(~0ULL), 64u);
  EXPECT_EQ(Histogram::bucketBound(0), 0u);
  EXPECT_EQ(Histogram::bucketBound(3), 7u);
  EXPECT_EQ(Histogram::bucketBound(64), ~0ULL);

  Histogram H;
  H.observe(0);
  H.observe(5); // Bucket 3 (values 4..7).
  H.observe(7);
  H.observe(100); // Bucket 7 (values 64..127).
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  EXPECT_EQ(H.bucketCount(7), 1u);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 112u);
}

TEST(StatRegistryTest, PromDumpIsCumulative) {
  StatRegistry R;
  R.counter("spf_cells_total").inc(7);
  // Exposition-time rename: counters registered without the Prometheus
  // _total suffix get it in writeProm (raw name kept everywhere else).
  R.counter("spf_widgets").inc(2);
  R.gauge("spf_depth").set(-3);
  Histogram &H = R.histogram("spf_lat_us");
  H.observe(1); // Bucket 1, bound 1.
  H.observe(6); // Bucket 3, bound 7.
  H.observe(7);
  std::ostringstream OS;
  R.writeProm(OS);
  const std::string P = OS.str();
  EXPECT_NE(P.find("# HELP spf_cells_total Monotonic event count.\n"
                   "# TYPE spf_cells_total counter\nspf_cells_total 7\n"),
            std::string::npos);
  EXPECT_NE(P.find("# TYPE spf_widgets_total counter\nspf_widgets_total 2\n"),
            std::string::npos);
  EXPECT_EQ(P.find("spf_widgets "), std::string::npos);
  EXPECT_NE(P.find("# HELP spf_depth Current value.\n"
                   "# TYPE spf_depth gauge\nspf_depth -3\n"),
            std::string::npos);
  EXPECT_NE(P.find("# TYPE spf_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(P.find("spf_lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  // Cumulative: the le="7" bucket includes the le="1" observation.
  EXPECT_NE(P.find("spf_lat_us_bucket{le=\"7\"} 3\n"), std::string::npos);
  EXPECT_NE(P.find("spf_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(P.find("spf_lat_us_sum 14\n"), std::string::npos);
  EXPECT_NE(P.find("spf_lat_us_count 3\n"), std::string::npos);
}

TEST(StatRegistryTest, ResetZeroesButKeepsHandles) {
  StatRegistry R;
  Counter &C = R.counter("spf_reset_test");
  Histogram &H = R.histogram("spf_reset_hist");
  C.inc(5);
  H.observe(42);
  R.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  // The cached references are still the registered stats.
  C.inc();
  EXPECT_EQ(R.counter("spf_reset_test").value(), 1u);
}

// -- Tracer -----------------------------------------------------------------

/// Drains the global tracer and disables it, restoring a clean slate for
/// the next test.
struct TracerGuard {
  TracerGuard() {
    Tracer::instance().disable();
    Tracer::instance().drain();
    Tracer::instance().enable();
  }
  ~TracerGuard() {
    Tracer::instance().drain();
    Tracer::instance().disable();
  }
};

TEST(TracerTest, NestedSpansRecordContainedIntervals) {
  TracerGuard G;
  {
    Span Outer("outer", "test");
    Outer.note("k", "v");
    { Span Inner("inner", "test"); }
  }
  std::vector<TraceEvent> Evs = Tracer::instance().drain();
  ASSERT_EQ(Evs.size(), 2u);
  // Spans record at end: the inner one lands first.
  const TraceEvent &Inner = Evs[0], &Outer = Evs[1];
  EXPECT_EQ(Inner.Name, "inner");
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_EQ(Outer.Ph, 'X');
  EXPECT_GE(Inner.TsUs, Outer.TsUs);
  EXPECT_LE(Inner.TsUs + Inner.DurUs, Outer.TsUs + Outer.DurUs);
  EXPECT_EQ(Inner.Pid, Outer.Pid);
  ASSERT_EQ(Outer.Args.size(), 1u);
  EXPECT_EQ(Outer.Args[0].first, "k");
  EXPECT_EQ(Outer.Args[0].second, "v");
}

TEST(TracerTest, InactiveTracerRecordsNothing) {
  Tracer::instance().disable();
  Tracer::instance().drain();
  {
    Span S("dead", "test");
    EXPECT_FALSE(S.live());
  }
  Tracer::instance().instant("dead-instant");
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST(TracerTest, ChromeTraceJsonSchema) {
  TracerGuard G;
  {
    Span S("phase-a", "test");
    S.noteU64("n", 3);
  }
  Tracer::instance().instant("marker", {{"tag", "t1"}});
  // Import simulates a worker's shipped spans: foreign pid preserved.
  TraceEvent Foreign;
  Foreign.Name = "worker-span";
  Foreign.Ph = 'X';
  Foreign.TsUs = 1;
  Foreign.DurUs = 2;
  Foreign.Pid = 999999;
  Foreign.Tid = 1;
  Tracer::instance().import({Foreign});

  std::ostringstream OS;
  size_t N = Tracer::instance().writeChromeTrace(OS, "obs_test");
  EXPECT_EQ(N, 3u);

  std::string Err;
  std::unique_ptr<harness::JsonValue> Doc =
      harness::JsonValue::parse(OS.str(), &Err);
  ASSERT_TRUE(Doc) << Err;
  const harness::JsonValue &Evs = Doc->get("traceEvents");
  ASSERT_EQ(Evs.kind(), harness::JsonValue::Kind::Array);
  std::set<uint64_t> Pids;
  unsigned Metadata = 0, Complete = 0, Instants = 0;
  for (const harness::JsonValue &E : Evs.array()) {
    ASSERT_TRUE(E.has("name"));
    ASSERT_TRUE(E.has("ph"));
    ASSERT_TRUE(E.has("pid"));
    ASSERT_TRUE(E.has("tid"));
    const std::string Ph = E.getString("ph");
    if (Ph == "M") {
      ++Metadata;
      EXPECT_EQ(E.getString("name"), "process_name");
    } else if (Ph == "X") {
      ++Complete;
      EXPECT_TRUE(E.has("ts"));
      EXPECT_TRUE(E.has("dur"));
      Pids.insert(E.getU64("pid"));
    } else if (Ph == "i") {
      ++Instants;
      EXPECT_EQ(E.getString("s"), "t");
    }
  }
  // One lane per process: ours and the imported worker's.
  EXPECT_EQ(Metadata, 2u);
  EXPECT_EQ(Complete, 2u);
  EXPECT_EQ(Instants, 1u);
  EXPECT_TRUE(Pids.count(999999));
}

TEST(TracerTest, WireFormatRoundtrips) {
  TraceEvent E;
  E.Name = "cell";
  E.Cat = "harness";
  E.Ph = 'X';
  E.TsUs = 123456789;
  E.DurUs = 42;
  E.Pid = 4321;
  E.Tid = 7;
  E.Args = {{"tag", "jess [INTER, p4]"}, {"attempt", "2"}};

  std::ostringstream OS;
  harness::JsonWriter J(OS);
  Tracer::writeEventsJson(J, {E});
  std::string Err;
  std::unique_ptr<harness::JsonValue> V =
      harness::JsonValue::parse(OS.str(), &Err);
  ASSERT_TRUE(V) << Err;
  std::vector<TraceEvent> Back = Tracer::parseEventsJson(*V);
  ASSERT_EQ(Back.size(), 1u);
  EXPECT_EQ(Back[0].Name, E.Name);
  EXPECT_EQ(Back[0].Cat, E.Cat);
  EXPECT_EQ(Back[0].Ph, E.Ph);
  EXPECT_EQ(Back[0].TsUs, E.TsUs);
  EXPECT_EQ(Back[0].DurUs, E.DurUs);
  EXPECT_EQ(Back[0].Pid, E.Pid);
  EXPECT_EQ(Back[0].Tid, E.Tid);
  // The parser reads args out of a name-ordered map; compare as sets.
  auto Sorted = [](std::vector<std::pair<std::string, std::string>> A) {
    std::sort(A.begin(), A.end());
    return A;
  };
  EXPECT_EQ(Sorted(Back[0].Args), Sorted(E.Args));
}

// -- Decision log -----------------------------------------------------------

/// Runs the full prefetch pass on the jess kernel under a DecisionScope
/// and returns the recorded events.
std::vector<DecisionEvent> runJessWithLog(core::PrefetchPassOptions Opts,
                                          core::PrefetchPassResult *R =
                                              nullptr) {
  JessWorld W(64, /*Scramble=*/true);
  DecisionLog Log;
  DecisionScope Scope(Log);
  core::PrefetchPass Pass(*W.Heap, Opts);
  core::PrefetchPassResult Result = Pass.run(W.Find, W.findArgs());
  if (R)
    *R = Result;
  return Log.take();
}

core::PrefetchPassOptions jessOpts() {
  core::PrefetchPassOptions Opts;
  Opts.Planner.Mode = core::PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = 64;
  return Opts;
}

TEST(DecisionLogTest, JessGoldenEvents) {
  core::PrefetchPassResult R;
  std::vector<DecisionEvent> Evs = runJessWithLog(jessOpts(), &R);
  ASSERT_FALSE(Evs.empty());

  // Every event is attributed to the method and a real loop header.
  std::set<uint64_t> Loops;
  for (const DecisionEvent &E : Evs) {
    EXPECT_FALSE(E.Method.empty());
    EXPECT_FALSE(E.Pass.empty());
    EXPECT_FALSE(E.Event.empty());
    Loops.insert(E.Loop);
  }
  // At least one decision entry per visited loop (the --explain
  // acceptance contract).
  EXPECT_GE(Loops.size(), size_t(R.LoopsVisited));

  auto Has = [&](const char *Pass, const char *Event) {
    return std::any_of(Evs.begin(), Evs.end(),
                       [&](const DecisionEvent &E) {
                         return E.Pass == Pass && E.Event == Event;
                       });
  };
  // jess's outer loop inspects, finds the 208-byte inter stride, plans,
  // and emits code; the 5-trip inner loop is skipped as small-trip.
  EXPECT_TRUE(Has("inspect", "reached"));
  EXPECT_TRUE(Has("inspect", "small-trip"));
  EXPECT_TRUE(Has("codegen", "emitted"));
  auto Inter = std::find_if(Evs.begin(), Evs.end(),
                            [](const DecisionEvent &E) {
                              return E.Pass == "stride" &&
                                     E.Event == "inter-pattern";
                            });
  ASSERT_NE(Inter, Evs.end());
  EXPECT_NE(Inter->Stride, 0);
  EXPECT_GT(Inter->Samples, 0u);
  EXPECT_GT(Inter->Confidence, 0.5);
  EXPECT_FALSE(Inter->Site.empty());
}

TEST(DecisionLogTest, FaultedInspectionRecordsOrigin) {
  auto C = support::FaultConfig::parse("inspect-read:1:3");
  ASSERT_TRUE(C.has_value());
  support::FaultInjector Injector(*C);
  support::FaultScope Scope(Injector);

  std::vector<DecisionEvent> Evs = runJessWithLog(jessOpts());
  // The originating fault site must be on the record (satellite: keep
  // the FaultSite/Status with the degraded loop, not just a counter).
  auto It = std::find_if(Evs.begin(), Evs.end(), [](const DecisionEvent &E) {
    return E.Pass == "inspect" && E.Event == "faults-injected";
  });
  ASSERT_NE(It, Evs.end());
  EXPECT_NE(It->Detail.find(support::faultSiteName(
                support::FaultSite::InspectHeapRead)),
            std::string::npos);
  EXPECT_GT(It->Samples, 0u);
}

TEST(DecisionLogTest, ScopeIsNullWhenNotInstalled) {
  EXPECT_EQ(DecisionScope::current(), nullptr);
  std::vector<DecisionEvent> Evs = runJessWithLog(jessOpts());
  EXPECT_FALSE(Evs.empty()); // Scoped run still records.
  EXPECT_EQ(DecisionScope::current(), nullptr); // Restored on unwind.
}

TEST(DecisionLogTest, FormatIsHumanReadable) {
  DecisionEvent E;
  E.Method = "find";
  E.Loop = 1;
  E.Pass = "stride";
  E.Event = "inter-pattern";
  E.Site = "%l4";
  E.Stride = 208;
  E.Samples = 19;
  E.Confidence = 1.0;
  std::string S = formatDecision(E);
  EXPECT_NE(S.find("find/loop@1"), std::string::npos);
  EXPECT_NE(S.find("[stride]"), std::string::npos);
  EXPECT_NE(S.find("inter-pattern"), std::string::npos);
  EXPECT_NE(S.find("stride=208"), std::string::npos);
  EXPECT_NE(S.find("samples=19"), std::string::npos);
}

TEST(DecisionLogTest, GovernorGoldenEvents) {
  // The governor's epoch re-decisions ride the same DecisionLog pipeline
  // as compile-time decisions (Pass="governor"), so --explain and
  // --decisions-out show *runtime* adaptation next to the static plan.
  DecisionLog Log;
  std::vector<opt::GovernorDecision> Decisions;
  {
    DecisionScope Scope(Log);
    opt::Governor Gov;
    auto Health = [](uint64_t Useful, uint64_t Late, uint64_t Unused) {
      sim::SiteStats S;
      S.SwIssued = Useful + Late + Unused;
      S.SwUseful = Useful;
      S.SwLate = Late;
      S.SwUnused = Unused;
      return S;
    };
    // Site 0 late (retune), sites 1+2 inaccurate (quarantine x2 ->
    // reinspect escalation).
    std::vector<sim::SiteStats> T = {Health(10, 50, 4), Health(4, 4, 56),
                                     Health(2, 2, 60)};
    Decisions = Gov.endEpoch(T);
  }
  ASSERT_EQ(Decisions.size(), 4u);

  std::vector<DecisionEvent> Evs = Log.take();
  ASSERT_EQ(Evs.size(), 4u);
  EXPECT_EQ(Evs[0].Pass, "governor");
  EXPECT_EQ(Evs[0].Event, "retune");
  EXPECT_EQ(Evs[0].Site, "site#0");
  EXPECT_EQ(Evs[0].Stride, 2); // The retuned extra lookahead.
  EXPECT_EQ(Evs[0].Samples, 64u);
  EXPECT_EQ(Evs[1].Event, "quarantine");
  EXPECT_EQ(Evs[1].Site, "site#1");
  EXPECT_EQ(Evs[2].Event, "quarantine");
  EXPECT_EQ(Evs[2].Site, "site#2");
  EXPECT_EQ(Evs[3].Event, "reinspect");
  EXPECT_EQ(Evs[3].Samples, 2u); // Quarantines behind the escalation.
  for (const DecisionEvent &E : Evs) {
    EXPECT_NE(E.Detail.find("resolved="), std::string::npos);
    EXPECT_NE(E.Detail.find("accuracy="), std::string::npos);
    // Human rendering stays readable for runtime events with no method
    // attribution.
    EXPECT_NE(formatDecision(E).find("[governor]"), std::string::npos);
  }
}

TEST(DecisionLogTest, GovernorWithoutScopeStillDecides) {
  // No DecisionScope installed: decisions are returned (and applied by
  // the runner) even though nothing is recorded — observability must
  // never gate behavior.
  opt::Governor Gov;
  sim::SiteStats S;
  S.SwIssued = 64;
  S.SwUseful = 2;
  S.SwUnused = 62;
  std::vector<sim::SiteStats> T = {S};
  std::vector<opt::GovernorDecision> D = Gov.endEpoch(T);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Quarantine);
}

// -- Cell-record codec ------------------------------------------------------

TEST(CellRecordTest, DecisionsRoundtripThroughJson) {
  harness::CellResult Cell;
  Cell.Ran = true;
  DecisionEvent D;
  D.Method = "find";
  D.Loop = 3;
  D.Pass = "plan";
  D.Event = "deref-prefetch";
  D.Site = "%a->%b";
  D.Detail = "guarded";
  D.Stride = -64;
  D.Samples = 12;
  D.Confidence = 0.75;
  Cell.Run.Decisions.push_back(D);

  std::ostringstream OS;
  harness::JsonWriter J(OS);
  harness::writeCellRecordJson(J, Cell);
  std::string Err;
  std::unique_ptr<harness::JsonValue> V =
      harness::JsonValue::parse(OS.str(), &Err);
  ASSERT_TRUE(V) << Err;
  harness::CellResult Back;
  ASSERT_TRUE(harness::parseCellRecord(*V, Back));
  ASSERT_EQ(Back.Run.Decisions.size(), 1u);
  const DecisionEvent &B = Back.Run.Decisions[0];
  EXPECT_EQ(B.Method, D.Method);
  EXPECT_EQ(B.Loop, D.Loop);
  EXPECT_EQ(B.Pass, D.Pass);
  EXPECT_EQ(B.Event, D.Event);
  EXPECT_EQ(B.Site, D.Site);
  EXPECT_EQ(B.Detail, D.Detail);
  EXPECT_EQ(B.Stride, D.Stride);
  EXPECT_EQ(B.Samples, D.Samples);
  EXPECT_DOUBLE_EQ(B.Confidence, D.Confidence);
}

TEST(CellRecordTest, NoDecisionsMeansNoMember) {
  // Byte-compat contract: an obs-off record must not even mention the
  // member, so pre-obs readers and diff-based CI stay unperturbed.
  harness::CellResult Cell;
  Cell.Ran = true;
  std::ostringstream OS;
  harness::JsonWriter J(OS);
  harness::writeCellRecordJson(J, Cell);
  EXPECT_EQ(OS.str().find("decisions"), std::string::npos);
}

// -- Observability never changes results ------------------------------------

TEST(ObsParityTest, RunPlanStatsAreIdenticalOnAndOff) {
  using workloads::Algorithm;
  auto BuildPlan = [] {
    harness::ExperimentPlan Plan;
    workloads::WorkloadConfig Cfg;
    Cfg.Scale = 0.05;
    Plan.addSweep({workloads::findWorkload("jess")},
                  {Algorithm::Baseline, Algorithm::InterIntra},
                  {(*sim::MachineConfig::byName("pentium4"))}, Cfg);
    return Plan;
  };

  obs::setEnabled(false);
  harness::ExperimentPlan PlanOff = BuildPlan();
  harness::ExperimentResult Off = harness::runPlan(PlanOff, 2);
  obs::setEnabled(true);
  harness::ExperimentPlan PlanOn = BuildPlan();
  harness::ExperimentResult On = harness::runPlan(PlanOn, 2);
  obs::setEnabled(true); // Leave enabled (the build default).

  ASSERT_TRUE(Off.ok());
  ASSERT_TRUE(On.ok());
  ASSERT_EQ(Off.Cells.size(), On.Cells.size());
  for (size_t I = 0; I != Off.Cells.size(); ++I) {
    const workloads::RunResult &A = Off.Cells[I].Run;
    const workloads::RunResult &B = On.Cells[I].Run;
    EXPECT_EQ(A.CompiledCycles, B.CompiledCycles);
    EXPECT_EQ(A.Retired, B.Retired);
    EXPECT_EQ(A.ReturnValue, B.ReturnValue);
    EXPECT_EQ(A.Mem.Loads, B.Mem.Loads);
    EXPECT_EQ(A.Mem.L1LoadMisses, B.Mem.L1LoadMisses);
    EXPECT_EQ(A.Mem.L2LoadMisses, B.Mem.L2LoadMisses);
    EXPECT_EQ(A.Mem.DtlbLoadMisses, B.Mem.DtlbLoadMisses);
    EXPECT_EQ(A.Mem.SwPrefetchesIssued, B.Mem.SwPrefetchesIssued);
    EXPECT_EQ(A.Prefetch.CodeGen.Prefetches,
              B.Prefetch.CodeGen.Prefetches);
    EXPECT_EQ(A.Prefetch.CodeGen.SpecLoads, B.Prefetch.CodeGen.SpecLoads);
    // Decisions are the one sanctioned difference: recorded only when
    // observability is on.
    EXPECT_TRUE(A.Decisions.empty());
  }
  // The prefetched cell must have decision events when obs is on.
  EXPECT_FALSE(On.Cells.back().Run.Decisions.empty());
}

} // namespace
