//===- tests/stride_test.cpp - Stride pattern detection -------------------===//

#include "TestKernels.h"
#include "core/ObjectInspector.h"
#include "core/StrideAnalysis.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::core;
using namespace spf::testkernels;

namespace {

TEST(DominantStrideTest, UnanimousSamplesGiveTheStride) {
  StrideOptions Opts;
  std::vector<int64_t> S(19, 208);
  auto D = dominantStride(S, Opts);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, 208);
}

TEST(DominantStrideTest, TooFewSamplesRejected) {
  StrideOptions Opts; // MinSamples = 4.
  std::vector<int64_t> S = {8, 8, 8};
  EXPECT_FALSE(dominantStride(S, Opts).has_value());
  S.push_back(8);
  EXPECT_TRUE(dominantStride(S, Opts).has_value());
}

TEST(DominantStrideTest, NegativeStridesWork) {
  StrideOptions Opts;
  std::vector<int64_t> S(10, -264);
  auto D = dominantStride(S, Opts);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, -264);
}

/// Majority-threshold sweep: with 20 samples, the dominant value must
/// reach the configured fraction.
struct ThresholdCase {
  unsigned Matching; // Out of 20.
  double Threshold;
  bool Expect;
};

class ThresholdSweep : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweep, MajorityRuleHolds) {
  ThresholdCase C = GetParam();
  StrideOptions Opts;
  Opts.MajorityThreshold = C.Threshold;
  std::vector<int64_t> S;
  for (unsigned I = 0; I != C.Matching; ++I)
    S.push_back(64);
  // Non-matching samples are all distinct so they never form a majority.
  for (unsigned I = C.Matching; I != 20; ++I)
    S.push_back(1000 + I);
  unsigned N = 0;
  auto D = dominantStride(S, Opts, &N);
  EXPECT_EQ(N, 20u);
  EXPECT_EQ(D.has_value(), C.Expect);
  if (D) {
    EXPECT_EQ(*D, 64);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, ThresholdSweep,
    ::testing::Values(ThresholdCase{20, 0.75, true},   // 100%
                      ThresholdCase{15, 0.75, true},   // Exactly 75%.
                      ThresholdCase{14, 0.75, false},  // 70%.
                      ThresholdCase{19, 0.75, true},   // 95%: one outlier.
                      ThresholdCase{10, 0.50, true},   // Lower threshold.
                      ThresholdCase{10, 0.75, false},
                      ThresholdCase{20, 1.00, true},
                      ThresholdCase{19, 1.00, false}));

struct JessStrides {
  JessWorld W;
  analysis::DominatorTree DT;
  analysis::LoopInfo LI;

  JessStrides(bool Scramble)
      : W(64, Scramble), DT((W.Find->recomputePreds(), W.Find)),
        LI(W.Find, DT) {}

  LoadDependenceGraph annotated() {
    analysis::Loop *Outer = LI.topLevelLoops()[0];
    LoadDependenceGraph G(Outer, LI);
    ObjectInspector Insp(*W.Heap, LI);
    InspectionResult R = Insp.inspect(W.Find, W.findArgs(), Outer, G);
    annotateStrides(G, R, StrideOptions());
    return G;
  }
};

TEST(StrideAnnotationTest, ScrambledJessMatchesThePaper) {
  // Paper, Section 2: "the resulting stride profiles show that only L4
  // has a stride pattern" among the token-chasing loads, while (L9, L10)
  // has an intra-iteration pattern.
  JessStrides F(/*Scramble=*/true);
  LoadDependenceGraph G = F.annotated();

  auto Node = [&](ir::Instruction *I) -> const LdgNode & {
    return G.nodes()[*G.nodeFor(I)];
  };

  ASSERT_TRUE(Node(F.W.L4).InterStride.has_value());
  EXPECT_EQ(*Node(F.W.L4).InterStride, 8);

  // Loop invariants: no (nonzero) inter stride.
  EXPECT_FALSE(Node(F.W.L1).InterStride.has_value());
  EXPECT_FALSE(Node(F.W.L2).InterStride.has_value());
  EXPECT_FALSE(Node(F.W.L5).InterStride.has_value());
  EXPECT_FALSE(Node(F.W.L6).InterStride.has_value());

  // Scrambled token fields: no inter pattern.
  EXPECT_FALSE(Node(F.W.L9).InterStride.has_value());
  EXPECT_FALSE(Node(F.W.L10).InterStride.has_value());
  EXPECT_FALSE(Node(F.W.L11).InterStride.has_value());

  // (L9, L10): constant intra-iteration stride — facts array adjacent to
  // its token: (tok+32+8) - (tok+16) = 24.
  LdgEdge *E = G.edgeBetween(*G.nodeFor(F.W.L9), *G.nodeFor(F.W.L10));
  ASSERT_NE(E, nullptr);
  ASSERT_TRUE(E->IntraStride.has_value());
  EXPECT_EQ(*E->IntraStride, 24);

  // (L9, L11): first element of facts: (tok+32+16) - (tok+16) = 32.
  LdgEdge *E2 = G.edgeBetween(*G.nodeFor(F.W.L9), *G.nodeFor(F.W.L11));
  ASSERT_NE(E2, nullptr);
  ASSERT_TRUE(E2->IntraStride.has_value());
  EXPECT_EQ(*E2->IntraStride, 32);
}

TEST(StrideAnnotationTest, UnscrambledTokensShowInterPatterns) {
  // Without the scramble, token objects sit at a constant 208-byte pitch
  // and even L9 shows an inter-iteration stride.
  JessStrides F(/*Scramble=*/false);
  LoadDependenceGraph G = F.annotated();
  const LdgNode &N9 = G.nodes()[*G.nodeFor(F.W.L9)];
  ASSERT_TRUE(N9.InterStride.has_value());
  EXPECT_EQ(*N9.InterStride, F.W.tokenPitch());
}

TEST(StrideAnnotationTest, IntraJoinSkipsIterationsWithMissingAddresses) {
  // Synthetic traces: From recorded on iterations 0..9, To only on evens;
  // the join must use only matching iterations.
  LoadDependenceGraph *Dummy = nullptr;
  (void)Dummy;
  InspectionResult R;
  JessStrides F(true);
  LoadDependenceGraph G(F.LI.topLevelLoops()[0], F.LI);

  ir::Instruction *From = F.W.L9;
  ir::Instruction *To = F.W.L10;
  for (unsigned I = 0; I != 10; ++I)
    R.Trace[From].push_back({I, 1000 + 100 * I});
  for (unsigned I = 0; I != 10; I += 2)
    R.Trace[To].push_back({I, 1000 + 100 * I + 24});
  R.ReachedTarget = true;
  R.IterationsObserved = 10;
  // L9/L10 live in the inner loop: report it observed and small-trip.
  analysis::Loop *Inner = F.LI.topLevelLoops()[0]->subLoops()[0];
  R.SubLoopTrips[Inner] = TripStats{10, 10};

  annotateStrides(G, R, StrideOptions());
  LdgEdge *E = G.edgeBetween(*G.nodeFor(From), *G.nodeFor(To));
  ASSERT_NE(E, nullptr);
  ASSERT_TRUE(E->IntraStride.has_value());
  EXPECT_EQ(*E->IntraStride, 24);
  EXPECT_EQ(E->IntraSamples, 5u);
}

TEST(StrideAnnotationTest, ZeroIntraStrideIsDiscarded) {
  // From and To observe the very same address each iteration (To reloads
  // a field From already touched): the intra difference is constantly 0.
  // A zero intra stride must be discarded exactly like a zero inter
  // stride — a dereference prefetch of From's value already covers that
  // line, and a zero-stride edge would only grow the planner's chains.
  JessStrides F(true);
  LoadDependenceGraph G(F.LI.topLevelLoops()[0], F.LI);
  InspectionResult R;
  R.ReachedTarget = true;
  R.IterationsObserved = 10;
  ir::Instruction *From = F.W.L9;
  ir::Instruction *To = F.W.L10;
  for (unsigned I = 0; I != 10; ++I) {
    R.Trace[From].push_back({I, 6000 + 100 * I});
    R.Trace[To].push_back({I, 6000 + 100 * I});
  }
  analysis::Loop *Inner = F.LI.topLevelLoops()[0]->subLoops()[0];
  R.SubLoopTrips[Inner] = TripStats{10, 10};

  annotateStrides(G, R, StrideOptions());
  LdgEdge *E = G.edgeBetween(*G.nodeFor(From), *G.nodeFor(To));
  ASSERT_NE(E, nullptr);
  EXPECT_FALSE(E->IntraStride.has_value());
  // The samples were still inspected and counted.
  EXPECT_EQ(E->IntraSamples, 10u);
}

TEST(StrideAnnotationTest, InterStrideNeedsConsecutiveIterations) {
  // Addresses recorded only every third iteration: no consecutive pairs,
  // no inter stride even though the deltas are regular.
  JessStrides F(true);
  LoadDependenceGraph G(F.LI.topLevelLoops()[0], F.LI);
  InspectionResult R;
  R.ReachedTarget = true;
  for (unsigned I = 0; I < 30; I += 3)
    R.Trace[F.W.L4].push_back({I, 5000 + I * 8});
  annotateStrides(G, R, StrideOptions());
  EXPECT_FALSE(G.nodes()[*G.nodeFor(F.W.L4)].InterStride.has_value());
}

TEST(StrideAnnotationTest, LargeTripSubLoopsAreDropped) {
  JessStrides F(true);
  LoadDependenceGraph G(F.LI.topLevelLoops()[0], F.LI);
  InspectionResult R;
  R.ReachedTarget = true;
  // Give every load a perfect trace...
  for (ir::Instruction *L : {F.W.L4, F.W.L9})
    for (unsigned I = 0; I != 20; ++I)
      R.Trace[L].push_back({I, 4096 + I * 64});
  // ...but report the inner loop as having a large trip count.
  analysis::Loop *Inner = F.LI.topLevelLoops()[0]->subLoops()[0];
  R.SubLoopTrips[Inner] = TripStats{4, 400}; // avg 100 >> SmallTripMax.

  annotateStrides(G, R, StrideOptions());
  // L4 lives in the outer loop: kept. L9 lives in the inner loop: dropped.
  EXPECT_TRUE(G.nodes()[*G.nodeFor(F.W.L4)].InterStride.has_value());
  EXPECT_FALSE(G.nodes()[*G.nodeFor(F.W.L9)].InterStride.has_value());
}

TEST(StrideAnnotationTest, ZeroStridesAreLoopInvariantAndDiscarded) {
  JessStrides F(true);
  LoadDependenceGraph G(F.LI.topLevelLoops()[0], F.LI);
  InspectionResult R;
  R.ReachedTarget = true;
  for (unsigned I = 0; I != 20; ++I)
    R.Trace[F.W.L1].push_back({I, 7777});
  annotateStrides(G, R, StrideOptions());
  EXPECT_FALSE(G.nodes()[*G.nodeFor(F.W.L1)].InterStride.has_value());
  EXPECT_EQ(G.nodes()[*G.nodeFor(F.W.L1)].InterSamples, 19u);
}

} // namespace

// -- Wu's stride-pattern taxonomy (extension) ------------------------------

namespace taxonomy {

using spf::core::classifyStridePattern;
using spf::core::StridePatternKind;

TEST(StrideTaxonomyTest, StrongSingle) {
  StrideOptions Opts;
  std::vector<int64_t> S(20, 80);
  int64_t Stride = 0;
  EXPECT_EQ(classifyStridePattern(S, Opts, Stride),
            StridePatternKind::StrongSingle);
  EXPECT_EQ(Stride, 80);
}

TEST(StrideTaxonomyTest, WeakSingle) {
  StrideOptions Opts;
  // 60% dominant, the rest scattered: below the 75% threshold, above 50%.
  std::vector<int64_t> S;
  for (int I = 0; I < 12; ++I)
    S.push_back(64);
  for (int I = 0; I < 8; ++I)
    S.push_back(1000 + 13 * I); // Distinct values, irregular order.
  // Interleave so it is not phased.
  std::vector<int64_t> Mixed;
  for (size_t I = 0; I < S.size(); ++I)
    Mixed.push_back(I % 2 ? S[S.size() - 1 - I / 2] : S[I / 2]);
  int64_t Stride = 0;
  EXPECT_EQ(classifyStridePattern(Mixed, Opts, Stride),
            StridePatternKind::WeakSingle);
  EXPECT_EQ(Stride, 64);
}

TEST(StrideTaxonomyTest, PhasedMultiStride) {
  StrideOptions Opts;
  // Two long constant phases (a shell-sort gap change, say).
  std::vector<int64_t> S;
  for (int I = 0; I < 10; ++I)
    S.push_back(512);
  for (int I = 0; I < 10; ++I)
    S.push_back(256);
  int64_t Stride = 0;
  EXPECT_EQ(classifyStridePattern(S, Opts, Stride),
            StridePatternKind::PhasedMulti);
  EXPECT_EQ(Stride, 512); // First-phase/dominant stride.
}

TEST(StrideTaxonomyTest, RandomIsNone) {
  StrideOptions Opts;
  std::vector<int64_t> S;
  for (int I = 0; I < 20; ++I)
    S.push_back(I * 37 + (I % 3) * 1000); // All distinct.
  int64_t Stride = 0;
  EXPECT_EQ(classifyStridePattern(S, Opts, Stride),
            StridePatternKind::None);
}

TEST(StrideTaxonomyTest, ZeroStrideIsNotAPattern) {
  StrideOptions Opts;
  std::vector<int64_t> S(20, 0);
  int64_t Stride = 1;
  EXPECT_EQ(classifyStridePattern(S, Opts, Stride),
            StridePatternKind::None);
}

TEST(StrideTaxonomyTest, KindNamesArePrintable) {
  EXPECT_STREQ(spf::core::stridePatternKindName(
                   StridePatternKind::StrongSingle),
               "strong-single");
  EXPECT_STREQ(spf::core::stridePatternKindName(
                   StridePatternKind::PhasedMulti),
               "phased-multi");
}

} // namespace taxonomy
