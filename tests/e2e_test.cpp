//===- tests/e2e_test.cpp - End-to-end reproduction properties ------------===//
//
// Directional assertions of the paper's evaluation, at a reduced scale
// that still exceeds the cache capacities where the mechanism demands it.
// These lock in the *shape* of Figures 6-10: who wins, where nothing
// happens, and which misses disappear.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::workloads;

namespace {

WorkloadConfig e2eConfig() {
  WorkloadConfig Cfg;
  Cfg.Scale = 0.3; // Working sets still exceed L2 where they should.
  return Cfg;
}

RunResult run(const char *Name, Algorithm A, const sim::MachineConfig &M) {
  const WorkloadSpec *Spec = findWorkload(Name);
  EXPECT_NE(Spec, nullptr);
  RunOptions Opt;
  Opt.Config = e2eConfig();
  Opt.Algo = A;
  Opt.Machine = M;
  return runWorkload(*Spec, Opt);
}

double pct(const RunResult &Base, const RunResult &Opt, const char *Name) {
  return speedupPercent(Base, Opt, findWorkload(Name)->CompiledFraction);
}

TEST(E2ETest, DbGainsBigWithIntraAndNothingWithInter) {
  auto P4 = (*sim::MachineConfig::byName("pentium4"));
  RunResult Base = run("db", Algorithm::Baseline, P4);
  RunResult Inter = run("db", Algorithm::Inter, P4);
  RunResult Intra = run("db", Algorithm::InterIntra, P4);

  EXPECT_NEAR(pct(Base, Inter, "db"), 0.0, 0.5); // Wu's approach: nothing.
  EXPECT_GT(pct(Base, Intra, "db"), 8.0);        // Ours: large.
  // Prefetching must not change the sort.
  EXPECT_EQ(Base.ReturnValue, Intra.ReturnValue);
}

TEST(E2ETest, DbDtlbMissesCollapseOnP4) {
  // Figure 10's headline: guarded loads prime the DTLB.
  auto P4 = (*sim::MachineConfig::byName("pentium4"));
  RunResult Base = run("db", Algorithm::Baseline, P4);
  RunResult Intra = run("db", Algorithm::InterIntra, P4);
  EXPECT_LT(Intra.Mem.DtlbLoadMisses, Base.Mem.DtlbLoadMisses / 5);
  EXPECT_LT(Intra.Mem.L2LoadMisses, Base.Mem.L2LoadMisses);
  EXPECT_GT(Intra.Mem.GuardedLoads, 0u);
}

TEST(E2ETest, EulerGainsEquallyFromBothAlgorithms) {
  for (auto M : {(*sim::MachineConfig::byName("pentium4")),
                 (*sim::MachineConfig::byName("athlonmp"))}) {
    RunResult Base = run("Euler", Algorithm::Baseline, M);
    RunResult Inter = run("Euler", Algorithm::Inter, M);
    RunResult Intra = run("Euler", Algorithm::InterIntra, M);
    double SInter = pct(Base, Inter, "Euler");
    double SIntra = pct(Base, Intra, "Euler");
    EXPECT_GT(SInter, 5.0) << M.Name;
    EXPECT_NEAR(SInter, SIntra, 1.5) << M.Name; // INTER ~= INTER+INTRA.
  }
}

RunResult runFullScale(const char *Name, Algorithm A,
                       const sim::MachineConfig &M) {
  const WorkloadSpec *Spec = findWorkload(Name);
  RunOptions Opt;
  Opt.Algo = A;
  Opt.Machine = M; // Full problem size (Opt.Config defaults to 1.0).
  return runWorkload(*Spec, Opt);
}

TEST(E2ETest, MolDynHelpsOnAthlonNotOnP4) {
  // The L2-resident molecule array: the P4's L2-filling prefetch cannot
  // help; the Athlon's L1-filling prefetch can. MolDyn's mechanism is a
  // capacity relation (fits L2, exceeds the Athlon L1), so this test runs
  // the full problem size.
  RunResult BaseP4 = runFullScale("MolDyn", Algorithm::Baseline,
                                  (*sim::MachineConfig::byName("pentium4")));
  RunResult IntraP4 = runFullScale("MolDyn", Algorithm::InterIntra,
                                   (*sim::MachineConfig::byName("pentium4")));
  RunResult BaseAt = runFullScale("MolDyn", Algorithm::Baseline,
                                  (*sim::MachineConfig::byName("athlonmp")));
  RunResult IntraAt = runFullScale("MolDyn", Algorithm::InterIntra,
                                   (*sim::MachineConfig::byName("athlonmp")));

  double P4Gain = pct(BaseP4, IntraP4, "MolDyn");
  double AtGain = pct(BaseAt, IntraAt, "MolDyn");
  EXPECT_LT(P4Gain, 1.0);       // No improvement (slight overhead).
  EXPECT_GT(AtGain, 1.0);       // Small but real improvement.
  EXPECT_GT(AtGain, P4Gain + 2.0);
}

TEST(E2ETest, NoApplicableFragmentsMeanNoChange) {
  // compress/javac/Search: identical instruction streams, identical
  // cycles (bit-for-bit: nothing was inserted).
  for (const char *Name : {"compress", "javac", "Search"}) {
    RunResult Base =
        run(Name, Algorithm::Baseline, (*sim::MachineConfig::byName("pentium4")));
    RunResult Intra =
        run(Name, Algorithm::InterIntra, (*sim::MachineConfig::byName("pentium4")));
    EXPECT_EQ(Base.CompiledCycles, Intra.CompiledCycles) << Name;
    EXPECT_EQ(Base.Retired, Intra.Retired) << Name;
  }
}

TEST(E2ETest, MpegaudioPaysPureOverhead) {
  RunResult Base =
      run("mpegaudio", Algorithm::Baseline, (*sim::MachineConfig::byName("pentium4")));
  RunResult Intra = run("mpegaudio", Algorithm::InterIntra,
                        (*sim::MachineConfig::byName("pentium4")));
  // Prefetches were inserted...
  EXPECT_GT(Intra.Retired, Base.Retired);
  // ...and could only cost cycles (the filter bank is cache-resident).
  EXPECT_GE(Intra.CompiledCycles, Base.CompiledCycles);
  double Slowdown = pct(Base, Intra, "mpegaudio");
  EXPECT_LT(Slowdown, 0.0);
  EXPECT_GT(Slowdown, -8.0); // But bounded: a slight degradation.
}

TEST(E2ETest, JessImprovesWithIntraOnly) {
  auto P4 = (*sim::MachineConfig::byName("pentium4"));
  RunResult Base = run("jess", Algorithm::Baseline, P4);
  RunResult Inter = run("jess", Algorithm::Inter, P4);
  RunResult Intra = run("jess", Algorithm::InterIntra, P4);
  EXPECT_NEAR(pct(Base, Inter, "jess"), 0.0, 0.5);
  EXPECT_GT(pct(Base, Intra, "jess"), 0.5);
  EXPECT_EQ(Base.ReturnValue, Intra.ReturnValue);
}

TEST(E2ETest, RetiredInstructionIncreaseIsBounded) {
  // Paper: the added prefetch instructions are relatively few (db +9.7%,
  // RayTracer +6.9%, jess +2.2%, the rest < 2%).
  auto P4 = (*sim::MachineConfig::byName("pentium4"));
  for (const char *Name : {"db", "jess", "Euler", "RayTracer"}) {
    RunResult Base = run(Name, Algorithm::Baseline, P4);
    RunResult Intra = run(Name, Algorithm::InterIntra, P4);
    double Increase = (static_cast<double>(Intra.Retired) /
                           static_cast<double>(Base.Retired) -
                       1.0) *
                      100.0;
    EXPECT_GE(Increase, 0.0) << Name;
    EXPECT_LT(Increase, 12.0) << Name;
  }
}

TEST(E2ETest, CompileTimeOverheadIsSmallShare) {
  // Figure 11's property at test scale: the pass is a small share of the
  // whole-program JIT time.
  auto P4 = (*sim::MachineConfig::byName("pentium4"));
  for (const char *Name : {"jess", "compress", "javac"}) {
    RunResult R = run(Name, Algorithm::InterIntra, P4);
    ASSERT_GT(R.JitTotalUs, 0.0) << Name;
    EXPECT_LT(R.JitPrefetchUs / R.JitTotalUs, 0.25) << Name;
  }
}

TEST(E2ETest, GcPreservesStridesAndPrefetchEffectiveness) {
  // Paper, Section 4: "Live objects are packed by sliding compaction,
  // which does not change their internal order on the heap. Thus, the
  // garbage collector usually preserves constant strides among the live
  // objects." Build a strided object array in a tight heap, run a loop
  // that allocates garbage every iteration (forcing collections) while
  // reading strided fields: the prefetch pass's stride predictions must
  // survive every compaction, and the result must be unchanged.
  auto BuildAndRun = [&](bool Prefetch, uint64_t &GcRuns,
                         uint64_t &Cycles) -> uint64_t {
    vm::TypeTable Types;
    auto *Rec = Types.addClass("Rec");
    const vm::FieldDesc *FV = Types.addField(Rec, "v", ir::Type::I64);
    for (int I = 0; I < 9; ++I)
      Types.addField(Rec, "p" + std::to_string(I), ir::Type::I64);
    auto *Blob = Types.addClass("Blob");
    for (int I = 0; I < 12; ++I)
      Types.addField(Blob, "b" + std::to_string(I), ir::Type::I64);

    vm::HeapConfig HC;
    HC.HeapBytes = 600 * 1024; // Tight: garbage forces collections.
    vm::Heap Heap(Types, HC);

    const unsigned N = 3000; // 3000 x 96 B = 288 KB live.
    std::vector<vm::Addr> Roots;
    vm::Addr Arr = Heap.allocArray(ir::Type::Ref, N);
    Roots.push_back(Arr);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr R = Heap.allocObject(*Rec);
      Heap.store(R + FV->Offset, ir::Type::I64, I);
      Heap.store(Heap.elemAddr(Arr, I), ir::Type::Ref, R);
    }

    ir::Module M;
    ir::IRBuilder B(M);
    ir::Method *Fn =
        M.addMethod("churnsum", ir::Type::I64, {ir::Type::Ref,
                                                ir::Type::I32});
    B.setInsertPoint(Fn->addBlock("entry"));
    workloads::LoopNest L(B, "i");
    ir::PhiInst *I = L.civ(B.i32(0));
    ir::PhiInst *Acc = L.addCarried(B.i64(0));
    L.beginBody(B.cmpLt(I, Fn->arg(1)));
    ir::Value *Obj = B.aload(Fn->arg(0), I, ir::Type::Ref);
    ir::Value *V = B.getField(Obj, FV); // 96-byte stride anchor.
    L.setNext(Acc, B.add(Acc, V));
    B.newObject(Blob); // 112 B of garbage per iteration.
    L.close();
    B.ret(Acc);
    EXPECT_TRUE(ir::verifyMethod(Fn));

    if (Prefetch) {
      core::PrefetchPassOptions Opts = passOptionsFor(
          (*sim::MachineConfig::byName("pentium4")), core::PrefetchMode::InterIntra);
      core::PrefetchPass Pass(Heap, Opts);
      core::PrefetchPassResult R = Pass.run(Fn, {Arr, N});
      EXPECT_GT(R.CodeGen.Prefetches, 0u);
    }

    sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
    exec::Interpreter Interp(Heap, Mem, &Roots);
    uint64_t Result = Interp.run(Fn, {Arr, N});
    GcRuns = Interp.stats().GcRuns;
    Cycles = Mem.cycles();

    // Post-run: surviving records were compacted, possibly several times,
    // but their relative order — and hence the constant pitch — holds.
    vm::Addr ArrNow = Roots[0];
    vm::Addr Prev = Heap.load(Heap.elemAddr(ArrNow, 0), ir::Type::Ref);
    for (unsigned K = 1; K != N; ++K) {
      vm::Addr Cur = Heap.load(Heap.elemAddr(ArrNow, K), ir::Type::Ref);
      EXPECT_EQ(Cur - Prev, 96u) << "stride broken at " << K;
      Prev = Cur;
    }
    return Result;
  };

  uint64_t GcBase = 0, GcOpt = 0, CycBase = 0, CycOpt = 0;
  uint64_t RBase = BuildAndRun(false, GcBase, CycBase);
  uint64_t ROpt = BuildAndRun(true, GcOpt, CycOpt);
  EXPECT_GT(GcBase, 0u) << "heap was not tight enough to force GC";
  EXPECT_GT(GcOpt, 0u);
  EXPECT_EQ(RBase, ROpt);
  EXPECT_LT(CycOpt, CycBase); // Prefetching effective across GCs.
}

} // namespace
