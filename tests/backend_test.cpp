//===- tests/backend_test.cpp - Liveness and linear-scan regalloc ---------===//

#include "ir/IRBuilder.h"
#include "opt/LinearScan.h"
#include "workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::ir;
using namespace spf::opt;

namespace {

class BackendTest : public ::testing::Test {
protected:
  Module M;
};

TEST_F(BackendTest, StraightLineLiveness) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  B.setInsertPoint(Entry);
  Value *A = B.add(Fn->arg(0), Fn->arg(1));
  Value *C = B.mul(A, A);
  B.ret(C);

  Liveness LV(Fn);
  // Nothing is live into the entry (arguments are defined there in our
  // model: they are not upward-exposed uses of a predecessor).
  const auto &In = LV.liveIn(Entry);
  EXPECT_TRUE(In[Fn->arg(0)->id()]); // Args are upward-exposed uses.
  EXPECT_FALSE(LV.liveAcrossBlocks(cast<Instruction>(A)->id()));
}

TEST_F(BackendTest, LoopCarriedValuesAreLiveAcrossBlocks) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *Acc = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  L.setNext(Acc, B.add(Acc, I));
  L.close();
  B.ret(Acc);
  Fn->recomputePreds();

  Liveness LV(Fn);
  EXPECT_TRUE(LV.liveAcrossBlocks(I->id()));
  EXPECT_TRUE(LV.liveAcrossBlocks(Acc->id()));
  // The loop bound argument is live into the header.
  EXPECT_TRUE(LV.liveIn(L.headerBlock())[Fn->arg(0)->id()]);
  // The civ is live out of the latch (feeds the header phi).
  EXPECT_TRUE(LV.liveOut(L.latchBlock()).size() > 0);
}

TEST_F(BackendTest, FewValuesNeedNoSpills) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.add(Fn->arg(0), Fn->arg(1));
  B.ret(B.mul(A, B.i32(3)));
  Fn->recomputePreds();

  Liveness LV(Fn);
  AllocationResult RA = allocateRegisters(Fn, LV, 7);
  EXPECT_EQ(RA.Spills, 0u);
  EXPECT_LE(RA.MaxPressure, 4u);
  // Every interval got a register.
  for (const LiveInterval &LI : RA.Intervals)
    EXPECT_GE(LI.Register, 0);
}

TEST_F(BackendTest, HighPressureForcesSpills) {
  // 12 simultaneously live values into 4 registers must spill.
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  std::vector<Value *> Vals;
  for (int I = 0; I < 12; ++I)
    Vals.push_back(B.add(Fn->arg(0), B.i32(I)));
  Value *Sum = Vals[0];
  for (int I = 1; I < 12; ++I)
    Sum = B.add(Sum, Vals[I]); // All 12 live until their use here.
  B.ret(Sum);
  Fn->recomputePreds();

  Liveness LV(Fn);
  AllocationResult RA = allocateRegisters(Fn, LV, 4);
  EXPECT_GT(RA.Spills, 0u);
  EXPECT_GE(RA.MaxPressure, 10u);

  // No two register-assigned intervals with the same register overlap.
  for (size_t I = 0; I < RA.Intervals.size(); ++I)
    for (size_t J = I + 1; J < RA.Intervals.size(); ++J) {
      const LiveInterval &A = RA.Intervals[I];
      const LiveInterval &C = RA.Intervals[J];
      if (A.Register < 0 || C.Register < 0 || A.Register != C.Register)
        continue;
      bool Disjoint = A.End < C.Start || C.End < A.Start;
      EXPECT_TRUE(Disjoint) << "register " << A.Register
                            << " double-booked";
    }
}

TEST_F(BackendTest, AllocationIsSoundOnRealKernels) {
  // Property: across every workload's hot method, no register is assigned
  // to two overlapping intervals.
  for (const auto &Spec : workloads::allWorkloads()) {
    workloads::WorkloadConfig Cfg;
    Cfg.Scale = 0.02;
    workloads::BuiltWorkload W = Spec.Build(Cfg);
    Method *Hot = W.CompileUnits[0].M;
    Hot->recomputePreds();
    Liveness LV(Hot);
    AllocationResult RA = allocateRegisters(Hot, LV, 7);
    for (size_t I = 0; I < RA.Intervals.size(); ++I)
      for (size_t J = I + 1; J < RA.Intervals.size(); ++J) {
        const LiveInterval &A = RA.Intervals[I];
        const LiveInterval &C = RA.Intervals[J];
        if (A.Register < 0 || C.Register < 0 ||
            A.Register != C.Register)
          continue;
        EXPECT_TRUE(A.End < C.Start || C.End < A.Start)
            << Spec.Name << ": overlapping intervals share a register";
      }
  }
}

} // namespace
