//===- tests/machine_test.cpp - Machine configs, RPT, page walks ----------===//
///
/// Covers the data-driven machine layer: the Baer-Chen RPT confidence
/// FSM, the builtin registry and its JSON machine-file round trip,
/// validate() diagnostics, the modeled page-table walk, and the
/// execution-signature separation contract (compile-relevant machine
/// facets key the trace cache; timing-only facets must not).
///
//===----------------------------------------------------------------------===//

#include "sim/MachineConfig.h"
#include "sim/MemorySystem.h"
#include "sim/RptPrefetcher.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace spf;
using namespace spf::sim;

namespace {

// ---------------------------------------------------------------------------
// RPT confidence FSM
// ---------------------------------------------------------------------------

class RptTest : public ::testing::Test {
protected:
  RptPrefetcher Rpt{/*NumEntries=*/8, /*Degree=*/2, /*PageBytes=*/4096};
  std::vector<uint64_t> Out;

  void observe(uint32_t Site, uint64_t Addr) { Rpt.observe(Site, Addr, Out); }
  RptState state(uint32_t Site) {
    const RptPrefetcher::Entry *E = Rpt.entryFor(Site);
    EXPECT_NE(E, nullptr);
    return E ? E->State : RptState::NoPred;
  }
};

TEST_F(RptTest, AllocationStartsInInitAndNeverIssues) {
  observe(1, 1000);
  EXPECT_EQ(state(1), RptState::Init);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(Rpt.entryFor(1)->Stride, 0);
}

TEST_F(RptTest, StridePromotesThroughTransientToSteady) {
  observe(1, 1000);
  observe(1, 1064); // Stride 64 first seen: Init -> Transient, gated.
  EXPECT_EQ(state(1), RptState::Transient);
  EXPECT_TRUE(Out.empty());
  observe(1, 1128); // Confirmed: Transient -> Steady, issues ahead.
  EXPECT_EQ(state(1), RptState::Steady);
  ASSERT_EQ(Out.size(), 2u); // Degree 2: next two strided lines.
  EXPECT_EQ(Out[0], 1128u + 64);
  EXPECT_EQ(Out[1], 1128u + 128);
  EXPECT_EQ(Rpt.issuedPrefetches(), 2u);
}

TEST_F(RptTest, RepeatedAddressReachesSteadyButZeroStrideIsGated) {
  observe(1, 1000);
  observe(1, 1000); // Stride 0 matches the fresh entry: Init -> Steady.
  EXPECT_EQ(state(1), RptState::Steady);
  EXPECT_TRUE(Out.empty()); // ... but stride 0 never issues.
}

TEST_F(RptTest, OneWrongStrideDemotesToInitButKeepsTheStride) {
  observe(1, 1000);
  observe(1, 1064);
  observe(1, 1128); // Steady, stride 64.
  Out.clear();
  observe(1, 5000); // Pointer-chase hiccup: Steady -> Init, stride kept.
  EXPECT_EQ(state(1), RptState::Init);
  EXPECT_EQ(Rpt.entryFor(1)->Stride, 64);
  EXPECT_TRUE(Out.empty()); // Demoted: issue gated again.
  observe(1, 5064); // The kept stride re-confirms in one step.
  EXPECT_EQ(state(1), RptState::Steady);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], 5064u + 64);
}

TEST_F(RptTest, ChangingStridesSinkToNoPredAndMustReconfirmTwice) {
  observe(1, 1000);
  observe(1, 1064); // Transient, stride 64.
  observe(1, 1200); // Wrong again: Transient -> NoPred, stride 136.
  EXPECT_EQ(state(1), RptState::NoPred);
  EXPECT_EQ(Rpt.entryFor(1)->Stride, 136);
  observe(1, 1336); // Correct once: NoPred -> Transient, still gated.
  EXPECT_EQ(state(1), RptState::Transient);
  EXPECT_TRUE(Out.empty());
  observe(1, 1472); // Correct twice: Transient -> Steady, issues.
  EXPECT_EQ(state(1), RptState::Steady);
  EXPECT_EQ(Out.size(), 2u);
}

TEST_F(RptTest, NegativeStridesAreFollowed) {
  observe(1, 8192 + 512);
  observe(1, 8192 + 448);
  observe(1, 8192 + 384);
  EXPECT_EQ(state(1), RptState::Steady);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], 8192u + 320);
  EXPECT_EQ(Out[1], 8192u + 256);
}

TEST_F(RptTest, PrefetchesNeverCrossThePage) {
  observe(1, 3904);
  observe(1, 3968);
  observe(1, 4032); // Steady at the last line of page 0: degree-2 would
                    // reach 4096/4160 — both on page 1, so nothing issues.
  EXPECT_EQ(state(1), RptState::Steady);
  EXPECT_TRUE(Out.empty());

  observe(2, 3840);
  observe(2, 3904);
  Out.clear();
  observe(2, 3968); // One target fits (4032); the second crosses.
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 4032u);
}

TEST_F(RptTest, SitesTrainIndependently) {
  // Interleaved streams with different strides — one entry each.
  uint64_t A = 1 << 20, B = 2 << 20;
  for (int I = 0; I != 3; ++I) {
    observe(1, A + 64 * static_cast<uint64_t>(I));
    observe(2, B + 256 * static_cast<uint64_t>(I));
  }
  EXPECT_EQ(state(1), RptState::Steady);
  EXPECT_EQ(state(2), RptState::Steady);
  EXPECT_EQ(Rpt.entryFor(1)->Stride, 64);
  EXPECT_EQ(Rpt.entryFor(2)->Stride, 256);
}

TEST_F(RptTest, LruReplacementEvictsTheColdestSite) {
  RptPrefetcher Small(/*NumEntries=*/2, /*Degree=*/1, /*PageBytes=*/4096);
  std::vector<uint64_t> O;
  Small.observe(1, 1000, O);
  Small.observe(2, 2000, O);
  Small.observe(2, 2064, O); // Site 1 is now the LRU entry.
  Small.observe(3, 3000, O); // Allocation victimizes site 1.
  EXPECT_EQ(Small.entryFor(1), nullptr);
  ASSERT_NE(Small.entryFor(2), nullptr);
  ASSERT_NE(Small.entryFor(3), nullptr);
}

// ---------------------------------------------------------------------------
// Registry, validation, machine files
// ---------------------------------------------------------------------------

TEST(MachineRegistryTest, ByNameNormalizesAndAliases) {
  for (const char *N : {"pentium4", "Pentium 4", "PENTIUM_4", "p4"}) {
    auto C = MachineConfig::byName(N);
    ASSERT_TRUE(C.has_value()) << N;
    EXPECT_EQ(C->Name, "Pentium 4") << N;
  }
  EXPECT_EQ(MachineConfig::byName("athlon-mp")->Name, "Athlon MP");
  EXPECT_EQ(MachineConfig::byName("athlon")->Name, "Athlon MP");
  EXPECT_EQ(MachineConfig::byName("modern3l")->Name, "Modern3L");
  EXPECT_EQ(MachineConfig::byName("modern")->Name, "Modern3L");
  EXPECT_FALSE(MachineConfig::byName("i486").has_value());
  EXPECT_EQ(MachineConfig::knownNames().size(), 3u);
}

TEST(MachineRegistryTest, BuiltinsValidateCleanly) {
  for (const std::string &Name : MachineConfig::knownNames()) {
    auto C = MachineConfig::byName(Name);
    ASSERT_TRUE(C.has_value());
    EXPECT_EQ(C->validate(), "") << Name;
  }
}

TEST(MachineValidateTest, RejectsBrokenGeometry) {
  MachineConfig C = MachineConfig::pentium4();
  C.Levels[0].Geometry.LineBytes = 48; // Not a power of two.
  EXPECT_NE(C.validate().find("power of two"), std::string::npos);

  C = MachineConfig::pentium4();
  C.Levels[1].Geometry.Assoc = 0;
  EXPECT_NE(C.validate().find("associativity"), std::string::npos);

  C = MachineConfig::pentium4();
  C.Levels.pop_back(); // Single-level hierarchy.
  EXPECT_NE(C.validate().find("two cache levels"), std::string::npos);

  C = MachineConfig::pentium4();
  C.SwFillLevel = 5;
  EXPECT_NE(C.validate().find("fill level"), std::string::npos);

  C = MachineConfig::modern3();
  C.WalkLevels = 0;
  EXPECT_NE(C.validate().find("walk levels"), std::string::npos);

  C = MachineConfig::pentium4();
  C.Levels[1].Geometry.SizeBytes = 1024; // L2 smaller than L1.
  EXPECT_NE(C.validate().find("smaller than the level above"),
            std::string::npos);
}

TEST(MachineFileTest, JsonRoundTripReproducesEveryBuiltin) {
  for (const std::string &Name : MachineConfig::knownNames()) {
    MachineConfig C = *MachineConfig::byName(Name);
    std::string Err;
    auto Back = MachineConfig::fromJsonText(C.toJsonText(), &Err);
    ASSERT_TRUE(Back.has_value()) << Name << ": " << Err;
    EXPECT_EQ(*Back, C) << Name;
  }
}

TEST(MachineFileTest, MalformedInputIsRejectedWithADiagnostic) {
  struct BadCase {
    const char *Text;
    const char *Expect;
  } Cases[] = {
      {"{", "malformed JSON"},
      {"[1,2]", "must be a JSON object"},
      {"{\"name\":\"x\"}", "\"levels\" array"},
      {"{\"name\":\"x\",\"levels\":[{\"label\":\"L1\",\"size_bytes\":8192,"
       "\"line_bytes\":64,\"assoc\":4,\"hit_cycles\":1},{\"label\":\"L2\","
       "\"size_bytes\":262144,\"line_bytes\":64,\"assoc\":8,"
       "\"hit_cycles\":6}],\"tlb\":{\"walk\":\"teleport\"}}",
       "unknown tlb walk mode"},
      {"{\"name\":\"x\",\"levels\":[{\"label\":\"L1\",\"size_bytes\":8192,"
       "\"line_bytes\":64,\"assoc\":4,\"hit_cycles\":1},{\"label\":\"L2\","
       "\"size_bytes\":262144,\"line_bytes\":64,\"assoc\":8,"
       "\"hit_cycles\":6}],\"hw_prefetch\":{\"kind\":\"psychic\"}}",
       "unknown hw_prefetch kind"},
      {"{\"name\":\"x\",\"levels\":[{\"label\":\"L1\",\"size_bytes\":8192,"
       "\"line_bytes\":64,\"assoc\":4,\"hit_cycles\":1},{\"label\":\"L2\","
       "\"size_bytes\":262144,\"line_bytes\":64,\"assoc\":8,"
       "\"hit_cycles\":6}],\"sw_prefetch_fill\":\"L9\"}",
       "names no cache level"},
      {"{\"name\":\"x\",\"levels\":[{\"label\":\"L1\",\"size_bytes\":8192,"
       "\"line_bytes\":48,\"assoc\":4,\"hit_cycles\":1},{\"label\":\"L2\","
       "\"size_bytes\":262144,\"line_bytes\":64,\"assoc\":8,"
       "\"hit_cycles\":6}]}",
       "invalid machine config"},
  };
  for (const BadCase &B : Cases) {
    std::string Err;
    auto C = MachineConfig::fromJsonText(B.Text, &Err);
    EXPECT_FALSE(C.has_value()) << B.Text;
    EXPECT_NE(Err.find(B.Expect), std::string::npos)
        << "got \"" << Err << "\", wanted substring \"" << B.Expect << "\"";
  }
}

TEST(MachineFileTest, FromFileReportsUnreadablePaths) {
  std::string Err;
  EXPECT_FALSE(
      MachineConfig::fromFile("/nonexistent/machine.json", &Err).has_value());
  EXPECT_NE(Err.find("cannot read"), std::string::npos);
}

/// The committed machines/*.json files are the CLI-facing versions of
/// the builtins; they must stay exactly in sync.
TEST(MachineFileTest, CommittedMachineFilesMatchTheBuiltins) {
  std::filesystem::path Repo =
      std::filesystem::path(__FILE__).parent_path().parent_path();
  struct FilePair {
    const char *File;
    MachineConfig Builtin;
  } Pairs[] = {
      {"machines/pentium4.json", MachineConfig::pentium4()},
      {"machines/athlon_mp.json", MachineConfig::athlonMP()},
      {"machines/modern3l.json", MachineConfig::modern3()},
  };
  for (const FilePair &P : Pairs) {
    std::string Err;
    auto C = MachineConfig::fromFile((Repo / P.File).string(), &Err);
    ASSERT_TRUE(C.has_value()) << P.File << ": " << Err;
    EXPECT_EQ(*C, P.Builtin) << P.File;
  }
}

// ---------------------------------------------------------------------------
// Execution-signature separation (the trace-cache key contract)
// ---------------------------------------------------------------------------

std::string sig(const MachineConfig &M, workloads::Algorithm Algo) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  workloads::RunOptions Opts;
  Opts.Machine = M;
  Opts.Algo = Algo;
  return workloads::executionSignature(*Spec, Opts);
}

TEST(SignatureTest, BaselineIsMachineIndependent) {
  // No compilation facet: one baseline trace serves every machine.
  EXPECT_EQ(sig(MachineConfig::pentium4(), workloads::Algorithm::Baseline),
            sig(MachineConfig::modern3(), workloads::Algorithm::Baseline));
}

TEST(SignatureTest, CompileRelevantFacetsNeverShareATraceCacheEntry) {
  // The planner's line size comes from the sw-fill level's geometry.
  MachineConfig A = MachineConfig::athlonMP();
  MachineConfig WideLine = A;
  WideLine.Levels[0].Geometry.LineBytes = 128;
  WideLine.Levels[1].Geometry.LineBytes = 128;
  EXPECT_NE(sig(A, workloads::Algorithm::InterIntra),
            sig(WideLine, workloads::Algorithm::InterIntra));

  // Guarded intra-iteration prefetching is compiled in only when the
  // fill level is below the L1 — same line size, different code.
  MachineConfig L2Fill = A; // Athlon L1/L2 lines are both 64B.
  L2Fill.SwFillLevel = 1;
  ASSERT_EQ(A.swFillLineBytes(), L2Fill.swFillLineBytes());
  EXPECT_NE(sig(A, workloads::Algorithm::InterIntra),
            sig(L2Fill, workloads::Algorithm::InterIntra));
}

TEST(SignatureTest, TimingOnlyFacetsShareTheTrace) {
  // Everything the compiler cannot see must NOT key the trace cache:
  // level sizes and hit penalties, the TLB model, the hardware
  // prefetcher. One recorded trace replays under all of them.
  MachineConfig M = MachineConfig::modern3();
  std::string Base = sig(M, workloads::Algorithm::InterIntra);

  MachineConfig Timing = M;
  Timing.Name = "Modern3L-detuned";
  Timing.MemPenalty += 100;
  Timing.Levels[1].HitCycles += 7;
  Timing.Levels[2].Geometry.SizeBytes *= 2;
  Timing.Walk = TlbWalk::Flat;
  Timing.TlbEntries = 16;
  Timing.HwPrefetch = HwPrefetchKind::Stream;
  EXPECT_EQ(sig(Timing, workloads::Algorithm::InterIntra), Base);

  MachineConfig HwOff = M;
  HwOff.HwPrefetchEnabled = false; // The per-cell experiment facet.
  EXPECT_EQ(sig(HwOff, workloads::Algorithm::InterIntra), Base);
}

// ---------------------------------------------------------------------------
// Modeled page walks
// ---------------------------------------------------------------------------

/// Modern3L with the hardware prefetcher off, so walk costs are the only
/// moving part.
MachineConfig walkedMachine() {
  MachineConfig C = MachineConfig::modern3();
  C.HwPrefetch = HwPrefetchKind::None;
  return C;
}

TEST(PageWalkTest, DemandMissWalksThroughTheCaches) {
  MemorySystem Mem(walkedMachine());
  Mem.load(1 << 20);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 1u);
  EXPECT_EQ(Mem.stats().PageWalks, 1u);
  EXPECT_GT(Mem.stats().PageWalkCycles, 0u);
  // A cold walk misses every level at every radix step.
  const MachineConfig &C = Mem.config();
  uint64_t ColdStep = C.MemPenalty;
  for (const CacheLevel &L : C.Levels)
    ColdStep += L.HitCycles;
  EXPECT_EQ(Mem.stats().PageWalkCycles, C.WalkLevels * ColdStep);
}

TEST(PageWalkTest, NeighborPagesShareUpperLevelEntries) {
  MemorySystem Mem(walkedMachine());
  Mem.load(1 << 20);
  uint64_t FirstWalk = Mem.stats().PageWalkCycles;
  Mem.load((1 << 20) + Mem.config().PageBytes); // Next page: new leaf PTE,
  uint64_t SecondWalk = Mem.stats().PageWalkCycles - FirstWalk;
  EXPECT_EQ(Mem.stats().PageWalks, 2u);
  EXPECT_GT(SecondWalk, 0u);
  EXPECT_LT(SecondWalk, FirstWalk); // ... warmed upper-level nodes.
}

TEST(PageWalkTest, GuardedLoadPrimingWalksButChargesNothing) {
  MemorySystem Mem(walkedMachine());
  uint64_t Addr = 1 << 20;
  Mem.guardedLoad(Addr);
  EXPECT_EQ(Mem.stats().PageWalks, 1u); // The priming walk happened...
  EXPECT_EQ(Mem.stats().PageWalkCycles, 0u); // ... latency-hidden.
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 0u); // Not a demand miss.
  // Only the issue overhead stalls the pipeline.
  EXPECT_EQ(Mem.cycles(), uint64_t(Mem.config().GuardedLoadCost));

  // Once the fill lands, the demand load finds the DTLB and caches
  // primed: no walk, no TLB miss, a plain L1 hit.
  Mem.tick(Mem.config().PrefetchFillLatency);
  uint64_t Before = Mem.cycles();
  Mem.load(Addr);
  EXPECT_EQ(Mem.stats().PageWalks, 1u);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 0u);
  EXPECT_EQ(Mem.cycles() - Before,
            uint64_t(Mem.config().Levels[0].HitCycles));
}

TEST(PageWalkTest, FlatTlbMachinesNeverWalk) {
  MemorySystem Mem(*MachineConfig::byName("pentium4"));
  Mem.load(1 << 20);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 1u);
  EXPECT_EQ(Mem.stats().PageWalks, 0u);
  EXPECT_EQ(Mem.stats().PageWalkCycles, 0u);
}

// ---------------------------------------------------------------------------
// Prefetcher selection inside MemorySystem
// ---------------------------------------------------------------------------

TEST(HwPrefetchSelectTest, RptObservesOnlyWhenSelectedAndEnabled) {
  MachineConfig Rpt = MachineConfig::modern3(); // kind = rpt
  MachineConfig Off = Rpt;
  Off.HwPrefetchEnabled = false;
  MachineConfig Stream = Rpt;
  Stream.HwPrefetch = HwPrefetchKind::Stream;

  MemorySystem A(Rpt), B(Off), C(Stream);
  for (uint64_t I = 0; I != 8; ++I) {
    A.load((1 << 20) + I * 64, 3);
    B.load((1 << 20) + I * 64, 3);
    C.load((1 << 20) + I * 64, 3);
  }
  EXPECT_EQ(A.rpt().observedLoads(), 8u);
  EXPECT_GT(A.rpt().issuedPrefetches(), 0u);
  EXPECT_EQ(B.rpt().observedLoads(), 0u);
  EXPECT_EQ(C.rpt().observedLoads(), 0u);
}

TEST(HwPrefetchSelectTest, RptPrefetchesCutLastLevelMisses) {
  MachineConfig WithRpt = MachineConfig::modern3();
  MachineConfig NoHw = walkedMachine();
  MemorySystem A(WithRpt), B(NoHw);
  // A long strided sweep inside pages: the steady-state RPT should hide
  // most last-level misses that the prefetcher-less machine pays.
  for (uint64_t I = 0; I != 512; ++I) {
    uint64_t Addr = (1 << 20) + I * 64;
    A.load(Addr, 9);
    A.tick(200); // Give prefetched lines time to arrive.
    B.load(Addr, 9);
    B.tick(200);
  }
  EXPECT_LT(A.stats().LlcLoadMisses, B.stats().LlcLoadMisses);
  EXPECT_LT(A.stats().CyclesStalledOnLoads, B.stats().CyclesStalledOnLoads);
}

} // namespace
