//===- tests/sim_test.cpp - Cache, TLB, prefetcher, memory system ---------===//

#include "sim/MemorySystem.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::sim;

namespace {

TEST(CacheTest, ColdMissThenHit) {
  Cache C(CacheParams{1024, 64, 2});
  EXPECT_FALSE(C.access(0x1000, 0).Hit);
  EXPECT_TRUE(C.access(0x1000, 1).Hit);
  EXPECT_TRUE(C.access(0x103F, 2).Hit); // Same line.
  EXPECT_FALSE(C.access(0x1040, 3).Hit); // Next line.
  EXPECT_EQ(C.demandAccesses(), 4u);
  EXPECT_EQ(C.demandMisses(), 2u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  // 2-way, 64B lines, 1024B => 8 sets. Lines mapping to set 0: multiples
  // of 8 lines = 512 bytes.
  Cache C(CacheParams{1024, 64, 2});
  EXPECT_FALSE(C.access(0 * 512, 0).Hit);
  EXPECT_FALSE(C.access(1 * 512, 1).Hit);
  EXPECT_TRUE(C.access(0 * 512, 2).Hit); // 0 now MRU.
  EXPECT_FALSE(C.access(2 * 512, 3).Hit); // Evicts 1 (LRU).
  EXPECT_TRUE(C.access(0 * 512, 4).Hit);
  EXPECT_FALSE(C.access(1 * 512, 5).Hit); // 1 was evicted.
}

TEST(CacheTest, PrefetchFillMakesDemandHitButCountsSeparately) {
  Cache C(CacheParams{1024, 64, 2});
  C.prefetchFill(0x2000, /*ReadyAt=*/0);
  EXPECT_EQ(C.prefetchFills(), 1u);
  EXPECT_EQ(C.demandAccesses(), 0u);
  auto R = C.access(0x2000, 100);
  EXPECT_TRUE(R.Hit);
  EXPECT_EQ(R.WaitCycles, 0u);
  EXPECT_EQ(C.demandMisses(), 0u);
}

TEST(CacheTest, LatePrefetchChargesRemainingLatency) {
  Cache C(CacheParams{1024, 64, 2});
  C.prefetchFill(0x2000, /*ReadyAt=*/150);
  auto R = C.access(0x2000, 100); // 50 cycles early.
  EXPECT_TRUE(R.Hit);
  EXPECT_EQ(R.WaitCycles, 50u);
  EXPECT_EQ(C.lateProbes(), 1u);
  // Once waited for, the line is ready.
  auto R2 = C.access(0x2000, 101);
  EXPECT_EQ(R2.WaitCycles, 0u);
}

TEST(CacheTest, ContainsDoesNotTouchLru) {
  Cache C(CacheParams{128, 64, 2}); // 1 set, 2 ways.
  C.access(0, 0);
  C.access(64, 1);
  EXPECT_TRUE(C.contains(0));
  EXPECT_TRUE(C.contains(128) == false);
  // `contains` must not have promoted line 0: accessing a new line evicts
  // the true LRU (line 0).
  C.access(128, 2);
  EXPECT_FALSE(C.contains(0));
  EXPECT_TRUE(C.contains(64));
}

/// Parameterized sweep: for a working set twice the cache size, a
/// sequential scan must miss on every distinct line regardless of
/// geometry; for half the cache size, the second pass must fully hit.
struct CacheGeom {
  uint64_t Size;
  unsigned Line;
  unsigned Assoc;
};

class CacheSweepTest : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(CacheSweepTest, SequentialScanObeysCapacity) {
  CacheGeom G = GetParam();
  Cache C(CacheParams{G.Size, G.Line, G.Assoc});

  // Pass 1 over half the cache: all cold misses.
  uint64_t Lines = G.Size / G.Line / 2;
  for (uint64_t I = 0; I != Lines; ++I)
    C.access(I * G.Line, I);
  EXPECT_EQ(C.demandMisses(), Lines);
  // Pass 2: everything fits; zero new misses.
  for (uint64_t I = 0; I != Lines; ++I)
    EXPECT_TRUE(C.access(I * G.Line, 1000 + I).Hit);
  EXPECT_EQ(C.demandMisses(), Lines);

  // A scan of twice the capacity leaves nothing reusable: a third pass
  // over it misses every line again (LRU + power-of-two strides).
  Cache C2(CacheParams{G.Size, G.Line, G.Assoc});
  uint64_t Big = G.Size / G.Line * 2;
  for (int Pass = 0; Pass != 2; ++Pass)
    for (uint64_t I = 0; I != Big; ++I)
      C2.access(I * G.Line, I);
  EXPECT_EQ(C2.demandMisses(), 2 * Big);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweepTest,
    ::testing::Values(CacheGeom{8 * 1024, 64, 4},    // P4 L1
                      CacheGeom{256 * 1024, 128, 8}, // P4 L2
                      CacheGeom{64 * 1024, 64, 2},   // Athlon L1
                      CacheGeom{256 * 1024, 64, 16}, // Athlon L2
                      CacheGeom{1024, 32, 1},        // Direct-mapped
                      CacheGeom{4096, 64, 64}));     // Fully associative

TEST(TlbTest, MissFillsEntry) {
  Tlb T(4, 4096);
  EXPECT_FALSE(T.access(0x1000));
  EXPECT_TRUE(T.access(0x1FFF)); // Same page.
  EXPECT_FALSE(T.access(0x2000));
  EXPECT_EQ(T.demandMisses(), 2u);
  EXPECT_EQ(T.demandAccesses(), 3u);
}

TEST(TlbTest, LruEvictionAcrossCapacity) {
  Tlb T(2, 4096);
  T.access(0x0000);  // Page 0.
  T.access(0x1000);  // Page 1.
  T.access(0x0000);  // Page 0 -> MRU.
  T.access(0x2000);  // Page 2: evicts page 1.
  EXPECT_TRUE(T.contains(0x0000));
  EXPECT_FALSE(T.contains(0x1000));
  EXPECT_TRUE(T.contains(0x2000));
}

TEST(TlbTest, FillPrimesWithoutCountingDemand) {
  Tlb T(4, 4096);
  T.fill(0x5000); // TLB priming (guarded load).
  EXPECT_EQ(T.demandAccesses(), 0u);
  EXPECT_TRUE(T.access(0x5000));
  EXPECT_EQ(T.demandMisses(), 0u);
}

TEST(HwPrefetcherTest, ConfirmedStreamEmitsNextLines) {
  HardwarePrefetcher P(4, 2, 64, 4096);
  std::vector<uint64_t> Out;
  P.onDemandMiss(0 * 64, Out); // Allocates stream, predicts line 1.
  EXPECT_TRUE(Out.empty());
  P.onDemandMiss(1 * 64, Out); // Confirms: prefetch lines 2 and 3.
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], 2u * 64);
  EXPECT_EQ(Out[1], 3u * 64);
}

TEST(HwPrefetcherTest, RandomMissesNeverConfirm) {
  HardwarePrefetcher P(4, 2, 64, 4096);
  std::vector<uint64_t> Out;
  uint64_t Addrs[] = {0, 5 * 64, 17 * 64, 3 * 64, 40 * 64, 11 * 64};
  for (uint64_t A : Addrs)
    P.onDemandMiss(A, Out);
  EXPECT_TRUE(Out.empty());
}

TEST(HwPrefetcherTest, StreamsStopAtPageBoundary) {
  HardwarePrefetcher P(4, 4, 64, 4096);
  std::vector<uint64_t> Out;
  // Lines 62, 63 are at the end of page 0 (64 lines per page).
  P.onDemandMiss(62 * 64, Out);
  P.onDemandMiss(63 * 64, Out);
  // Degree 4 would reach lines 64..67, all in page 1: none allowed.
  EXPECT_TRUE(Out.empty());
}

class MemorySystemTest : public ::testing::Test {
protected:
  MemorySystemTest() : Mem((*MachineConfig::byName("pentium4"))) {}
  MemorySystem Mem;
};

TEST_F(MemorySystemTest, ComputeTicksAdvanceClock) {
  Mem.tick(10);
  EXPECT_EQ(Mem.cycles(), 10u);
}

TEST_F(MemorySystemTest, ColdLoadPaysFullPenaltyThenHitsL1) {
  const MachineConfig &C = Mem.config();
  Mem.load(0x100000);
  uint64_t Cold = Mem.cycles();
  EXPECT_EQ(Cold, C.Levels[0].HitCycles + C.TlbMissPenalty +
                      C.Levels[1].HitCycles + C.MemPenalty);
  Mem.load(0x100000);
  EXPECT_EQ(Mem.cycles() - Cold, C.Levels[0].HitCycles);
  EXPECT_EQ(Mem.stats().Loads, 2u);
  EXPECT_EQ(Mem.stats().L1LoadMisses, 1u);
  EXPECT_EQ(Mem.stats().L2LoadMisses, 1u);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 1u);
}

TEST_F(MemorySystemTest, PrefetchCancelledOnTlbMiss) {
  // Nothing touched the page yet: the hardware prefetch must cancel.
  Mem.prefetch(0x300000);
  EXPECT_EQ(Mem.stats().SwPrefetchesCancelled, 1u);
  // The line was not brought in.
  uint64_t Before = Mem.cycles();
  Mem.load(0x300000);
  EXPECT_GT(Mem.cycles() - Before,
            static_cast<uint64_t>(Mem.config().MemPenalty));
}

TEST_F(MemorySystemTest, PrefetchAfterTlbWarmupFillsL2) {
  const MachineConfig &C = Mem.config();
  Mem.load(0x300000); // Warm the page's TLB entry.
  Mem.prefetch(0x300000 + 2 * C.Levels[1].Geometry.LineBytes);
  EXPECT_EQ(Mem.stats().SwPrefetchesCancelled, 0u);
  // Let the fill complete.
  Mem.tick(C.PrefetchFillLatency);
  uint64_t Before = Mem.cycles();
  Mem.load(0x300000 + 2 * C.Levels[1].Geometry.LineBytes);
  // On the P4 the prefetch fills only the L2: the load misses L1, hits L2.
  EXPECT_EQ(Mem.cycles() - Before, C.Levels[0].HitCycles + C.Levels[1].HitCycles);
  EXPECT_EQ(Mem.stats().L2LoadMisses, 1u); // Only the warmup load.
}

TEST_F(MemorySystemTest, GuardedLoadPrimesTlbAndFillsL1) {
  const MachineConfig &C = Mem.config();
  Mem.guardedLoad(0x400000);
  EXPECT_EQ(Mem.stats().GuardedLoads, 1u);
  Mem.tick(C.PrefetchFillLatency);
  uint64_t Before = Mem.cycles();
  Mem.load(0x400000);
  // TLB primed and L1 filled: a pure L1 hit.
  EXPECT_EQ(Mem.cycles() - Before, C.Levels[0].HitCycles);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 0u);
}

TEST_F(MemorySystemTest, LatePrefetchPaysPartialLatency) {
  const MachineConfig &C = Mem.config();
  Mem.load(0x500000); // TLB warmup.
  Mem.prefetch(0x500000 + 4 * C.Levels[1].Geometry.LineBytes);
  // Access immediately: the fill is in flight.
  uint64_t Before = Mem.cycles();
  Mem.load(0x500000 + 4 * C.Levels[1].Geometry.LineBytes);
  uint64_t Cost = Mem.cycles() - Before;
  EXPECT_GT(Cost,
            static_cast<uint64_t>(C.Levels[0].HitCycles + C.Levels[1].HitCycles));
  EXPECT_LE(Cost,
            static_cast<uint64_t>(C.Levels[0].HitCycles +
                                  C.Levels[1].HitCycles + C.PrefetchFillLatency));
}

TEST(MemorySystemAthlonTest, SwPrefetchFillsL1OnAthlon) {
  MachineConfig C = *MachineConfig::byName("athlon");
  MemorySystem Mem(C);
  Mem.load(0x600000); // TLB warmup.
  Mem.prefetch(0x600000 + 4 * C.Levels[0].Geometry.LineBytes);
  Mem.tick(C.PrefetchFillLatency);
  uint64_t Before = Mem.cycles();
  Mem.load(0x600000 + 4 * C.Levels[0].Geometry.LineBytes);
  EXPECT_EQ(Mem.cycles() - Before, C.Levels[0].HitCycles); // Straight L1 hit.
}

TEST(MachineConfigTest, Table2Parameters) {
  MachineConfig P4 = (*MachineConfig::byName("pentium4"));
  ASSERT_EQ(P4.numLevels(), 2u);
  EXPECT_EQ(P4.Levels[0].Geometry.SizeBytes, 8u * 1024);
  EXPECT_EQ(P4.Levels[0].Geometry.LineBytes, 64u);
  EXPECT_EQ(P4.Levels[1].Geometry.SizeBytes, 256u * 1024);
  EXPECT_EQ(P4.Levels[1].Geometry.LineBytes, 128u);
  EXPECT_EQ(P4.TlbEntries, 64u);
  EXPECT_EQ(P4.SwFillLevel, 1u); // SW prefetches fill the L2.
  EXPECT_EQ(P4.Walk, TlbWalk::Flat);

  MachineConfig At = (*MachineConfig::byName("athlonmp"));
  ASSERT_EQ(At.numLevels(), 2u);
  EXPECT_EQ(At.Levels[0].Geometry.SizeBytes, 64u * 1024);
  EXPECT_EQ(At.Levels[0].Geometry.LineBytes, 64u);
  EXPECT_EQ(At.Levels[1].Geometry.SizeBytes, 256u * 1024);
  EXPECT_EQ(At.Levels[1].Geometry.LineBytes, 64u);
  EXPECT_EQ(At.TlbEntries, 256u);
  EXPECT_EQ(At.SwFillLevel, 0u); // SW prefetches fill the L1 too.
  EXPECT_EQ(At.Walk, TlbWalk::Flat);
}

} // namespace

namespace moresim {

using namespace spf::sim;

TEST(HwPrefetcherTest, TracksMultipleConcurrentStreams) {
  HardwarePrefetcher P(4, 1, 64, 4096);
  std::vector<uint64_t> Out;
  // Two interleaved ascending streams at distant bases.
  uint64_t A = 0, B = 1 << 20;
  P.onDemandMiss(A, Out);
  P.onDemandMiss(B, Out);
  EXPECT_TRUE(Out.empty());
  P.onDemandMiss(A + 64, Out); // Confirms stream A.
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], A + 128);
  Out.clear();
  P.onDemandMiss(B + 64, Out); // Confirms stream B independently.
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], B + 128);
}

TEST(MemorySystemTest2, StoresDoNotCountInLoadMpis) {
  MemorySystem Mem((*MachineConfig::byName("pentium4")));
  Mem.store(0x700000);
  Mem.store(0x700000 + 4096);
  EXPECT_EQ(Mem.stats().L1LoadMisses, 0u);
  EXPECT_EQ(Mem.stats().L2LoadMisses, 0u);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, 0u);
  EXPECT_EQ(Mem.stats().Stores, 2u);
}

TEST(MemorySystemTest2, WarmerIsNeverSlower) {
  // Property: re-running the same access trace against a warm hierarchy
  // never costs more cycles than the cold pass.
  MachineConfig C = (*MachineConfig::byName("athlonmp"));
  MemorySystem Mem(C);
  std::vector<uint64_t> Trace;
  uint64_t A = 0x100000000ull;
  for (int I = 0; I != 2000; ++I)
    Trace.push_back(A + (I * 296) % (1 << 18));
  uint64_t T0 = Mem.cycles();
  for (uint64_t Addr : Trace)
    Mem.load(Addr);
  uint64_t Cold = Mem.cycles() - T0;
  uint64_t T1 = Mem.cycles();
  for (uint64_t Addr : Trace)
    Mem.load(Addr);
  uint64_t Warm = Mem.cycles() - T1;
  EXPECT_LE(Warm, Cold);
}

} // namespace moresim
