//===- tests/pass_test.cpp - The full prefetch pass and JIT pipeline ------===//

#include "TestKernels.h"
#include "core/PrefetchPass.h"
#include "exec/Interpreter.h"
#include "jit/CompileManager.h"
#include "sim/MemorySystem.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;
using namespace spf::testkernels;

namespace {

unsigned countOpcode(Method *M, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instructions())
      N += I->opcode() == Op;
  return N;
}

TEST(PassTest, JessGetsSpecLoadAndPrefetchInTheOuterBody) {
  JessWorld W;
  PrefetchPassOptions Opts;
  Opts.Planner.Mode = PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(W.Find, W.findArgs());

  EXPECT_EQ(R.LoopsVisited, 2u);
  EXPECT_EQ(R.LoopsSkippedSmallTrip, 1u); // The 5-trip inner loop.
  EXPECT_EQ(R.CodeGen.SpecLoads, 1u);
  EXPECT_GE(R.CodeGen.Prefetches, 1u);
  EXPECT_TRUE(verifyMethod(W.Find));

  // The instructions were inserted right after the anchor L4, in the
  // outer body.
  BasicBlock *BB = W.L4->parent();
  const auto &Insts = BB->instructions();
  size_t I4 = 0;
  while (Insts[I4].get() != W.L4)
    ++I4;
  EXPECT_EQ(Insts[I4 + 1]->opcode(), Opcode::SpecLoad);
  EXPECT_EQ(Insts[I4 + 2]->opcode(), Opcode::Prefetch);
  // The prefetch dereferences the spec_load's value.
  auto *Pf = cast<PrefetchInst>(Insts[I4 + 2].get());
  EXPECT_EQ(Pf->base(), Insts[I4 + 1].get());
  EXPECT_EQ(Pf->displacement(), 16);
}

TEST(PassTest, InterModeLeavesJessUntouched) {
  JessWorld W;
  PrefetchPassOptions Opts;
  Opts.Planner.Mode = PrefetchMode::Inter;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(W.Find, W.findArgs());
  EXPECT_EQ(R.CodeGen.Prefetches + R.CodeGen.SpecLoads, 0u);
  EXPECT_EQ(countOpcode(W.Find, Opcode::Prefetch), 0u);
}

TEST(PassTest, TransformedJessComputesTheSameResult) {
  // The strongest property: the optimized method returns the identical
  // value and the heap ends in the identical state.
  JessWorld W1, W2;
  PrefetchPassOptions Opts;
  Opts.Planner.Mode = PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W2.Heap, Opts);
  Pass.run(W2.Find, W2.findArgs());

  sim::MemorySystem M1((*sim::MachineConfig::byName("pentium4")));
  sim::MemorySystem M2((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I1(*W1.Heap, M1);
  exec::Interpreter I2(*W2.Heap, M2);
  uint64_t R1 = I1.run(W1.Find, W1.findArgs());
  uint64_t R2 = I2.run(W2.Find, W2.findArgs());

  // Identical worlds (same construction) => identical relative results:
  // both null or both the same token (addresses are deterministic).
  EXPECT_EQ(R1, R2);
  EXPECT_GT(I2.stats().PrefetchRelated, 0u);
}

TEST(PassTest, MethodsWithoutLoopsAreUntouched) {
  JessWorld W;
  PrefetchPassOptions Opts;
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(W.Equals, {});
  EXPECT_EQ(R.LoopsVisited, 0u);
  EXPECT_EQ(R.CodeGen.Prefetches, 0u);
}

TEST(PassTest, UnknownArgumentsMeanNoPrefetching) {
  // Compiling with no argument values (e.g. an uninvoked method): object
  // inspection sees unknowns everywhere and discovers nothing.
  JessWorld W;
  PrefetchPassOptions Opts;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(W.Find, /*Args=*/{});
  EXPECT_EQ(R.CodeGen.Prefetches + R.CodeGen.SpecLoads, 0u);
}

TEST(PassTest, PassIsIdempotentOnSecondRun) {
  // Recompilation must not double-insert prefetches for covered lines.
  JessWorld W;
  PrefetchPassOptions Opts;
  Opts.Planner.Mode = PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W.Heap, Opts);
  Pass.run(W.Find, W.findArgs());
  unsigned After1 = countOpcode(W.Find, Opcode::Prefetch) +
                    countOpcode(W.Find, Opcode::SpecLoad);
  PrefetchPass Pass2(*W.Heap, Opts);
  Pass2.run(W.Find, W.findArgs());
  unsigned After2 = countOpcode(W.Find, Opcode::Prefetch) +
                    countOpcode(W.Find, Opcode::SpecLoad);
  // A second run may re-plan the same targets, but the dedup against the
  // line-sized window keeps growth bounded (it cannot explode).
  EXPECT_LE(After2, 2 * After1);
  EXPECT_TRUE(verifyMethod(W.Find));
}

TEST(CompileManagerTest, PipelineRunsAllStagesAndTimesThem) {
  JessWorld W;
  jit::CompileManager::Options Opts;
  Opts.EnablePrefetch = true;
  Opts.Pass.Planner.Mode = PrefetchMode::InterIntra;
  Opts.Pass.Planner.LineBytes = 64;
  jit::CompileManager Jit(*W.Heap, Opts);
  jit::CompileResult R = Jit.compile(W.Find, W.findArgs());

  EXPECT_GT(R.Timings.totalUs(), 0.0);
  EXPECT_GT(R.Timings.PrefetchUs, 0.0);
  EXPECT_GT(R.Timings.baselineUs(), 0.0);
  EXPECT_EQ(Jit.totalJitUs(), R.Timings.totalUs());
  EXPECT_EQ(Jit.prefetchUs(), R.Timings.PrefetchUs);
  EXPECT_GE(R.Prefetch.CodeGen.SpecLoads, 1u);
  EXPECT_TRUE(verifyMethod(W.Find));
}

TEST(CompileManagerTest, BaselineCompilationSkipsThePass) {
  JessWorld W;
  jit::CompileManager::Options Opts;
  Opts.EnablePrefetch = false;
  jit::CompileManager Jit(*W.Heap, Opts);
  jit::CompileResult R = Jit.compile(W.Find, W.findArgs());
  EXPECT_EQ(R.Timings.PrefetchUs, 0.0);
  EXPECT_EQ(countOpcode(W.Find, Opcode::Prefetch), 0u);
}

TEST(CompileManagerTest, CleanupPassesActuallyClean) {
  // The jess kernel has duplicated bound-check arraylengths in the inner
  // body (L7 is loop-invariant too); CSE/DCE must find something across
  // the pipeline without breaking the method.
  JessWorld W;
  jit::CompileManager::Options Opts;
  Opts.EnablePrefetch = false;
  jit::CompileManager Jit(*W.Heap, Opts);

  IRBuilder B(W.M);
  // Add a foldable expression to the entry block start via a fresh method
  // instead; here just assert the pipeline reports *some* work on a
  // method with a constant expression.
  Method *Fn = W.M.addMethod("fold", Type::I32, {});
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(B.add(B.i32(40), B.i32(2)));
  jit::CompileResult R = Jit.compile(Fn, {});
  EXPECT_EQ(R.Folded, 1u);
  EXPECT_TRUE(verifyMethod(Fn));
}

} // namespace

TEST(CompileManagerTest, BackendStatsArePopulated) {
  JessWorld W;
  jit::CompileManager::Options Opts;
  Opts.EnablePrefetch = false;
  jit::CompileManager Jit(*W.Heap, Opts);
  jit::CompileResult R = Jit.compile(W.Find, W.findArgs());
  EXPECT_GT(R.Timings.BackendUs, 0.0);
  EXPECT_GT(R.MaxPressure, 2u);  // The nested loop keeps several values live.
  EXPECT_LT(R.MaxPressure, 64u); // Sanity.
}
