//===- tests/trace_test.cpp - Access-event trace layer --------------------===//
//
// The trace layer's contract, bottom to top: every event kind survives
// record -> encode -> decode -> replay losslessly; the encoding stays
// compact on strided streams; replaying a recorded run through a fresh
// MemorySystem reproduces the direct run's statistics bit for bit (for
// every Table 3 workload on both machines); and the experiment driver's
// record-once / replay-many path changes no reported statistic.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TraceCache.h"
#include "support/FaultInjection.h"
#include "sim/CountingSink.h"
#include "sim/MemorySystem.h"
#include "trace/RecordingSink.h"
#include "trace/TraceBuffer.h"
#include "workloads/Runner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace spf;
using namespace spf::trace;

namespace {

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Decodes \p Buf back into a flat event list.
std::vector<AccessEvent> decodeAll(const TraceBuffer &Buf) {
  std::vector<AccessEvent> Events;
  TraceReader Reader(Buf);
  AccessEvent E;
  while (Reader.next(E))
    Events.push_back(E);
  return Events;
}

// -- Encoding ---------------------------------------------------------------

TEST(TraceBufferTest, RoundTripsEveryEventKind) {
  TraceBuffer Buf;
  Buf.tick(7);
  Buf.load(0x1000, 0);
  Buf.load(0x1040, 0);   // Same-site stride.
  Buf.load(0x9000, 3);   // Forward site jump.
  Buf.load(0x8fc0, 1);   // Backward site jump, backward address.
  Buf.store(0x2000);
  Buf.store(0x1ff8);     // Negative delta.
  Buf.prefetch(0x3000);
  Buf.guardedLoad(0x4000);
  Buf.guardedLoadFault();
  Buf.tick(1);
  Buf.finish();

  std::vector<AccessEvent> Expected = {
      {EventKind::Tick, 7, 0},
      {EventKind::Load, 0x1000, 0},
      {EventKind::Load, 0x1040, 0},
      {EventKind::Load, 0x9000, 3},
      {EventKind::Load, 0x8fc0, 1},
      {EventKind::Store, 0x2000, 0},
      {EventKind::Store, 0x1ff8, 0},
      {EventKind::Prefetch, 0x3000, 0},
      {EventKind::GuardedLoad, 0x4000, 0},
      {EventKind::GuardedLoadFault, 0, 0},
      {EventKind::Tick, 1, 0},
  };
  EXPECT_EQ(decodeAll(Buf), Expected);
  EXPECT_EQ(Buf.events(), Expected.size());
  EXPECT_EQ(Buf.loadSites(), 4u); // One past the largest site id (3).
}

TEST(TraceBufferTest, ConsecutiveTicksMergeIntoOneEvent) {
  TraceBuffer Buf;
  for (unsigned I = 0; I != 1000; ++I)
    Buf.tick(3);
  Buf.finish();
  ASSERT_EQ(Buf.events(), 1u);
  EXPECT_EQ(Buf.recordedCalls(), 1000u);

  // tick(a); tick(b) == tick(a+b) by the AccessSink additivity contract,
  // so the merged replay drives the sink identically.
  sim::CountingSink Counts;
  replay(Buf, Counts);
  EXPECT_EQ(Counts.TickCalls, 1u);
  EXPECT_EQ(Counts.TicksTotal, 3000u);
}

TEST(TraceBufferTest, StridedStreamStaysUnderFourBytesPerEvent) {
  // The shape runWorkload produces: per iteration a tick run, a few
  // constant-stride loads from fixed sites, and an occasional store.
  TraceBuffer Buf;
  uint64_t A = 0x10000, B = 0x80000, C = 0x200000;
  for (unsigned I = 0; I != 100000; ++I) {
    Buf.tick(4);
    Buf.load(A += 24, 0);
    Buf.load(B += 128, 1);
    Buf.load(C += 8, 2);
    if (I % 7 == 0)
      Buf.store(A);
  }
  Buf.finish();
  ASSERT_GT(Buf.events(), 400000u);
  double BytesPerEvent = static_cast<double>(Buf.byteSize()) /
                         static_cast<double>(Buf.events());
  EXPECT_LE(BytesPerEvent, 4.0) << Buf.byteSize() << " bytes for "
                                << Buf.events() << " events";
}

TEST(TraceBufferTest, FuzzedStreamRoundTripsExactly) {
  uint64_t Rng = 0xdecafbad;
  TraceBuffer Buf;
  std::vector<AccessEvent> Expected;
  uint64_t PendingTicks = 0;
  auto Flush = [&] {
    if (PendingTicks) {
      Expected.push_back({EventKind::Tick, PendingTicks, 0});
      PendingTicks = 0;
    }
  };

  for (unsigned I = 0; I != 50000; ++I) {
    switch (splitmix64(Rng) % 6) {
    case 0: {
      // Counts up to full 64-bit range (varint + RLE paths).
      uint64_t N = splitmix64(Rng) >> (splitmix64(Rng) % 64);
      PendingTicks += N;
      Buf.tick(N);
      break;
    }
    case 1: {
      exec::SiteId Site = static_cast<exec::SiteId>(splitmix64(Rng) % 64);
      uint64_t Addr = splitmix64(Rng); // Arbitrary 64-bit (wraparound).
      Flush();
      Expected.push_back({EventKind::Load, Addr, Site});
      Buf.load(Addr, Site);
      break;
    }
    case 2: {
      uint64_t Addr = splitmix64(Rng);
      Flush();
      Expected.push_back({EventKind::Store, Addr, 0});
      Buf.store(Addr);
      break;
    }
    case 3: {
      uint64_t Addr = splitmix64(Rng);
      Flush();
      Expected.push_back({EventKind::Prefetch, Addr, 0});
      Buf.prefetch(Addr);
      break;
    }
    case 4: {
      uint64_t Addr = splitmix64(Rng);
      Flush();
      Expected.push_back({EventKind::GuardedLoad, Addr, 0});
      Buf.guardedLoad(Addr);
      break;
    }
    case 5:
      Flush();
      Expected.push_back({EventKind::GuardedLoadFault, 0, 0});
      Buf.guardedLoadFault();
      break;
    }
  }
  Flush();
  Buf.finish();
  EXPECT_EQ(decodeAll(Buf), Expected);
}

TEST(TraceBufferTest, ByteCapDiscardsTraceButKeepsCounting) {
  TraceBuffer Buf;
  Buf.setByteCap(64);
  uint64_t Rng = 1;
  for (unsigned I = 0; I != 1000; ++I)
    Buf.load(splitmix64(Rng), static_cast<exec::SiteId>(I % 8));
  Buf.finish();
  EXPECT_TRUE(Buf.overflowed());
  EXPECT_EQ(Buf.byteSize(), 0u); // Storage released, not just truncated.
  EXPECT_EQ(Buf.recordedCalls(), 1000u);
}

TEST(TraceBufferTest, SpillRoundTripPreservesTheStream) {
  TraceBuffer Buf;
  Buf.tick(100);
  for (unsigned I = 0; I != 500; ++I) {
    Buf.load(0x1000 + 16 * I, 0);
    Buf.tick(2);
  }
  Buf.guardedLoadFault();
  Buf.finish();

  std::stringstream SS;
  Buf.writeTo(SS);

  TraceBuffer Loaded;
  ASSERT_TRUE(Loaded.readFrom(SS));
  EXPECT_EQ(Loaded.events(), Buf.events());
  EXPECT_EQ(Loaded.loadSites(), Buf.loadSites());
  EXPECT_EQ(decodeAll(Loaded), decodeAll(Buf));
}

TEST(TraceBufferTest, ReadFromRejectsCorruptStreams) {
  TraceBuffer Buf;
  Buf.load(0x1000, 0);
  Buf.finish();
  std::stringstream SS;
  Buf.writeTo(SS);
  std::string Good = SS.str();

  TraceBuffer Out;
  { // Truncated mid-payload.
    std::stringstream Bad(Good.substr(0, Good.size() - 1));
    EXPECT_FALSE(Out.readFrom(Bad));
  }
  { // Wrong magic.
    std::string Flipped = Good;
    Flipped[0] ^= 0xff;
    std::stringstream Bad(Flipped);
    EXPECT_FALSE(Out.readFrom(Bad));
  }
  { // Empty.
    std::stringstream Bad("");
    EXPECT_FALSE(Out.readFrom(Bad));
  }
}

TEST(TraceBufferTest, SpillTruncatedAtEveryByteOffsetIsRejected) {
  TraceBuffer Buf;
  Buf.tick(12);
  for (unsigned I = 0; I != 100; ++I)
    Buf.load(0x4000 + 24 * I, static_cast<exec::SiteId>(I % 3));
  Buf.store(0x9000);
  Buf.guardedLoadFault();
  Buf.finish();
  std::stringstream SS;
  Buf.writeTo(SS);
  std::string Good = SS.str();
  ASSERT_GT(Good.size(), 32u);

  for (size_t Len = 0; Len != Good.size(); ++Len) {
    // Stream path: every proper prefix is rejected before any payload is
    // interpreted.
    TraceBuffer Out;
    std::stringstream Bad(Good.substr(0, Len));
    EXPECT_FALSE(Out.readFrom(Bad)) << "prefix " << Len;
    EXPECT_EQ(Out.events(), 0u) << "prefix " << Len;

    // Borrowed (mmap-shaped) path: same verdict, cursor not advanced.
    TraceBuffer Borrow;
    const uint8_t *P = reinterpret_cast<const uint8_t *>(Good.data());
    const uint8_t *Start = P;
    EXPECT_FALSE(Borrow.borrowFrom(P, P + Len, nullptr)) << "prefix " << Len;
    EXPECT_EQ(P, Start) << "prefix " << Len;
  }

  // The untruncated blob still reads back fine through both paths.
  TraceBuffer Out;
  std::stringstream Ok(Good);
  ASSERT_TRUE(Out.readFrom(Ok));
  EXPECT_EQ(decodeAll(Out), decodeAll(Buf));
  TraceBuffer Borrow;
  const uint8_t *P = reinterpret_cast<const uint8_t *>(Good.data());
  ASSERT_TRUE(Borrow.borrowFrom(P, P + Good.size(), nullptr));
  EXPECT_EQ(P, reinterpret_cast<const uint8_t *>(Good.data()) + Good.size());
  EXPECT_EQ(decodeAll(Borrow), decodeAll(Buf));
}

TEST(TraceBufferTest, SpillBitFlipsAreRejected) {
  TraceBuffer Buf;
  for (unsigned I = 0; I != 200; ++I) {
    Buf.tick(1 + I % 5);
    Buf.load(0x10000 + 8 * I, 0);
  }
  Buf.finish();
  std::stringstream SS;
  Buf.writeTo(SS);
  std::string Good = SS.str();

  // Every single-bit flip lands in the magic, the checksummed header
  // counters, or the checksummed payload, so none may survive.
  uint64_t Rng = 0xb17f11b5;
  for (unsigned Round = 0; Round != 500; ++Round) {
    std::string Bad = Good;
    size_t Byte = splitmix64(Rng) % Bad.size();
    Bad[Byte] = static_cast<char>(Bad[Byte] ^ (1u << (splitmix64(Rng) % 8)));

    TraceBuffer Out;
    std::stringstream IS(Bad);
    EXPECT_FALSE(Out.readFrom(IS)) << "flip at byte " << Byte;

    TraceBuffer Borrow;
    const uint8_t *P = reinterpret_cast<const uint8_t *>(Bad.data());
    EXPECT_FALSE(Borrow.borrowFrom(P, P + Bad.size(), nullptr))
        << "flip at byte " << Byte;
  }
}

TEST(TraceReaderFuzzTest, ArbitraryBytesNeverYieldGarbageEvents) {
  // The raw decoder seam: arbitrary bytes in, and the only acceptable
  // outcomes are well-formed events (valid kind, in-range site) followed
  // by a clean end or malformed(). The batched and per-event decoders
  // must agree on everything, including the failure point.
  uint64_t Rng = 0xfee1de5;
  for (unsigned Round = 0; Round != 400; ++Round) {
    size_t Len = splitmix64(Rng) % 600;
    std::vector<uint8_t> Raw(Len);
    for (uint8_t &B : Raw)
      B = static_cast<uint8_t>(splitmix64(Rng));
    uint32_t Sites = static_cast<uint32_t>(splitmix64(Rng) % 9);

    TraceReader PerEvent(Raw.data(), Raw.size(), Sites);
    std::vector<AccessEvent> One;
    AccessEvent E;
    while (PerEvent.next(E)) {
      One.push_back(E);
      ASSERT_LE(static_cast<unsigned>(E.Kind),
                static_cast<unsigned>(EventKind::GuardedLoadFault));
      if (E.Kind == EventKind::Load)
        ASSERT_LT(E.Site, Sites);
    }

    TraceReader Batched(Raw.data(), Raw.size(), Sites);
    std::vector<AccessEvent> Blocks;
    AccessEvent Block[ReplayBlockEvents];
    size_t Got;
    while ((Got = Batched.fill(Block, ReplayBlockEvents)) != 0)
      Blocks.insert(Blocks.end(), Block, Block + Got);

    ASSERT_EQ(One, Blocks) << "round " << Round;
    ASSERT_EQ(PerEvent.malformed(), Batched.malformed()) << "round " << Round;
  }
}

TEST(TraceReaderFuzzTest, TruncatedValidPayloadDecodesAPrefixThenFails) {
  TraceBuffer Buf;
  Buf.tick(1u << 20); // Multi-byte varint.
  for (unsigned I = 0; I != 40; ++I) {
    Buf.load(0x100000 + 4096 * I, static_cast<exec::SiteId>(I % 4));
    Buf.store(0x200000 + 8 * I);
    Buf.prefetch(0x300000 + 64 * I);
    Buf.guardedLoad(0x400000 + 128 * I);
  }
  Buf.finish();
  std::vector<AccessEvent> Full = decodeAll(Buf);

  for (size_t Len = 0; Len != Buf.byteSize(); ++Len) {
    TraceReader R(Buf.data(), Len, Buf.loadSites());
    std::vector<AccessEvent> Got;
    AccessEvent E;
    while (R.next(E))
      Got.push_back(E);
    // Whatever decodes before the cut is an exact prefix of the real
    // stream — truncation can hide events but never corrupt them (a cut
    // mid-event additionally sets malformed(); a cut on an event
    // boundary is indistinguishable from a shorter trace).
    ASSERT_LE(Got.size(), Full.size());
    ASSERT_TRUE(std::equal(Got.begin(), Got.end(), Full.begin()))
        << "prefix " << Len;
    if (R.malformed())
      EXPECT_LT(Got.size(), Full.size()) << Len;
  }
}

// -- Recording tee and replay ----------------------------------------------

/// Drives \p Sink with a deterministic synthetic access stream exercising
/// every event kind, including DTLB- and cache-hostile jumps.
void driveSyntheticStream(exec::AccessSink &Sink) {
  uint64_t Rng = 42;
  uint64_t Hot = 0x100000;
  for (unsigned I = 0; I != 20000; ++I) {
    Sink.tick(3);
    Sink.load(Hot += 24, 0);
    Sink.load((splitmix64(Rng) % (1u << 26)) & ~7ull, 1); // Random far.
    Sink.store(0x400000 + 8 * (I % 512));
    if (I % 3 == 0)
      Sink.prefetch(Hot + 24 * 4);
    if (I % 5 == 0)
      Sink.guardedLoad(0x800000 + 64 * I);
    if (I % 1024 == 0)
      Sink.guardedLoadFault();
  }
}

TEST(RecordingSinkTest, TeeIsInvisibleAndReplayIsBitIdentical) {
  sim::MachineConfig Machine = (*sim::MachineConfig::byName("pentium4"));

  // Direct: no recording involved at all.
  sim::MemorySystem Direct(Machine);
  driveSyntheticStream(Direct);

  // Recorded: same stream through the tee.
  sim::MemorySystem Live(Machine);
  TraceBuffer Buf;
  {
    RecordingSink Tee(Live, Buf);
    driveSyntheticStream(Tee);
  } // Destructor finishes the buffer.

  // The tee must not have perturbed the live simulation...
  EXPECT_EQ(Live.stats(), Direct.stats());
  EXPECT_EQ(Live.cycles(), Direct.cycles());
  EXPECT_EQ(Live.siteStats(), Direct.siteStats());

  // ...and replaying the recording reproduces it bit for bit.
  sim::MemorySystem Replayed(Machine);
  replay(Buf, Replayed);
  EXPECT_EQ(Replayed.stats(), Direct.stats());
  EXPECT_EQ(Replayed.cycles(), Direct.cycles());
  EXPECT_EQ(Replayed.siteStats(), Direct.siteStats());

  // The same trace replays on the *other* machine too; different timing,
  // same event counts.
  sim::MemorySystem Other((*sim::MachineConfig::byName("athlonmp")));
  replay(Buf, Other);
  EXPECT_EQ(Other.stats().Loads, Direct.stats().Loads);
  EXPECT_EQ(Other.stats().Stores, Direct.stats().Stores);
  EXPECT_EQ(Other.stats().GuardedLoads, Direct.stats().GuardedLoads);
}

TEST(CountingSinkTest, CountsEveryCall) {
  sim::CountingSink Counts;
  driveSyntheticStream(Counts);
  EXPECT_EQ(Counts.TickCalls, 20000u);
  EXPECT_EQ(Counts.TicksTotal, 60000u);
  EXPECT_EQ(Counts.Loads, 40000u);
  EXPECT_EQ(Counts.Stores, 20000u);
  EXPECT_EQ(Counts.LoadSites, 2u);
  EXPECT_EQ(Counts.totalCalls(),
            Counts.TickCalls + Counts.Loads + Counts.Stores +
                Counts.Prefetches + Counts.GuardedLoads +
                Counts.GuardedLoadFaults);
}

// -- Execution signatures ---------------------------------------------------

workloads::WorkloadConfig tinyConfig() {
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  return Cfg;
}

TEST(ExecutionSignatureTest, BaselineIsMachineIndependent) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions P4, Athlon;
  P4.Machine = (*sim::MachineConfig::byName("pentium4"));
  Athlon.Machine = (*sim::MachineConfig::byName("athlonmp"));
  P4.Config = Athlon.Config = tinyConfig();

  // BASELINE never runs the planner: one trace serves every machine.
  EXPECT_EQ(workloads::executionSignature(*Spec, P4),
            workloads::executionSignature(*Spec, Athlon));

  // The prefetch algorithms read LineBytes / the guarded-load choice, so
  // the two machines (L2/128B/guarded vs L1/64B/unguarded) key apart.
  P4.Algo = Athlon.Algo = workloads::Algorithm::InterIntra;
  EXPECT_NE(workloads::executionSignature(*Spec, P4),
            workloads::executionSignature(*Spec, Athlon));

  // Different algorithm, different signature.
  workloads::RunOptions Inter = P4;
  Inter.Algo = workloads::Algorithm::Inter;
  EXPECT_NE(workloads::executionSignature(*Spec, P4),
            workloads::executionSignature(*Spec, Inter));

  // Different scale, different signature.
  workloads::RunOptions Scaled = P4;
  Scaled.Config.Scale = 0.1;
  EXPECT_NE(workloads::executionSignature(*Spec, P4),
            workloads::executionSignature(*Spec, Scaled));
}

TEST(ExecutionSignatureTest, TunedRunsNeedAStableKey) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("db");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.TunePass = [](core::PrefetchPassOptions &P) {
    P.Planner.ScheduleDistance = 4;
  };
  // An arbitrary mutation cannot be keyed...
  EXPECT_EQ(workloads::executionSignature(*Spec, Opt), "");
  // ...until the caller names it.
  Opt.TuneKey = "dist=4";
  std::string Sig = workloads::executionSignature(*Spec, Opt);
  EXPECT_NE(Sig, "");
  EXPECT_NE(Sig.find("tune=dist=4"), std::string::npos);
}

TEST(ExecutionSignatureTest, EpochAndGcFacetsKeyApart) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Classic;
  Classic.Config = tinyConfig();
  std::string Base = workloads::executionSignature(*Spec, Classic);
  ASSERT_NE(Base, "");

  // Defaults (1 epoch, sliding-compact, no phase change) add no facet:
  // old journals and spilled traces keep their keys.
  workloads::RunOptions Defaults = Classic;
  Defaults.Epochs = 1;
  Defaults.GcVariant = vm::GcVariant::SlidingCompact;
  EXPECT_EQ(workloads::executionSignature(*Spec, Defaults), Base);

  // Every adaptation facet keys its own trace — including for BASELINE,
  // whose memory behavior changes with the boundary collections too.
  workloads::RunOptions Epochs = Classic;
  Epochs.Epochs = 4;
  std::string EpochSig = workloads::executionSignature(*Spec, Epochs);
  EXPECT_NE(EpochSig, Base);
  EXPECT_NE(EpochSig.find("epochs=4"), std::string::npos);

  workloads::RunOptions Variant = Epochs;
  Variant.GcVariant = vm::GcVariant::AddressShuffle;
  std::string VariantSig = workloads::executionSignature(*Spec, Variant);
  EXPECT_NE(VariantSig, EpochSig);
  EXPECT_NE(VariantSig.find("gc=address-shuffle"), std::string::npos);

  workloads::RunOptions Phase = Variant;
  Phase.PhaseChange = true;
  EXPECT_NE(workloads::executionSignature(*Spec, Phase), VariantSig);
}

TEST(ExecutionSignatureTest, GovernedRunsAreNeverKeyed) {
  // Governor re-decisions depend on observed machine timing, so a
  // governed execution is never correct to replay for another machine —
  // or to record at all: like an unnamed TunePass mutation it gets the
  // empty (unkeyable) signature and always interprets directly.
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.Epochs = 4;
  Opt.Governor = true;
  EXPECT_EQ(workloads::executionSignature(*Spec, Opt), "");
}

// -- Differential: replay == direct for the full evaluation matrix ---------

TEST(DifferentialTest, ReplayMatchesDirectForEveryWorkloadAndMachine) {
  // Includes the three-level machine so the page-walk and RPT paths are
  // exercised by the replay contract, not just the classic flat model.
  const std::vector<sim::MachineConfig> Machines = {
      (*sim::MachineConfig::byName("pentium4")),
      (*sim::MachineConfig::byName("athlonmp")),
      (*sim::MachineConfig::byName("modern3l"))};
  for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads()) {
    for (const sim::MachineConfig &Machine : Machines) {
      workloads::RunOptions Opt;
      Opt.Machine = Machine;
      Opt.Algo = workloads::Algorithm::InterIntra;
      Opt.Config = tinyConfig();
      TraceBuffer Buf;
      Opt.Record = &Buf;
      workloads::RunResult Direct = workloads::runWorkload(Spec, Opt);
      ASSERT_FALSE(Buf.overflowed()) << Spec.Name;

      workloads::RunResult Replayed =
          workloads::replayTrace(Direct, Buf, Machine);
      std::string Tag = Spec.Name + " on " + Machine.Name;
      EXPECT_TRUE(Replayed.Replayed) << Tag;
      EXPECT_EQ(Replayed.CompiledCycles, Direct.CompiledCycles) << Tag;
      EXPECT_EQ(Replayed.Mem, Direct.Mem) << Tag;
      EXPECT_EQ(Replayed.Sites, Direct.Sites) << Tag;
      EXPECT_EQ(Replayed.ReturnValue, Direct.ReturnValue) << Tag;
      EXPECT_EQ(Replayed.Retired, Direct.Retired) << Tag;
    }
  }
}

TEST(DifferentialTest, BaselineTraceReplaysAcrossMachines) {
  // The signature layer treats BASELINE traces as machine-independent;
  // verify the claim: a trace recorded on the Pentium 4 replayed on the
  // Athlon MP must match the Athlon's own direct run bit for bit.
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  ASSERT_NE(Spec, nullptr);

  workloads::RunOptions P4;
  P4.Machine = (*sim::MachineConfig::byName("pentium4"));
  P4.Config = tinyConfig();
  TraceBuffer Buf;
  P4.Record = &Buf;
  workloads::RunResult Recorded = workloads::runWorkload(*Spec, P4);

  workloads::RunOptions Athlon = P4;
  Athlon.Machine = (*sim::MachineConfig::byName("athlonmp"));
  Athlon.Record = nullptr;
  workloads::RunResult Direct = workloads::runWorkload(*Spec, Athlon);

  workloads::RunResult Replayed =
      workloads::replayTrace(Recorded, Buf, Athlon.Machine);
  EXPECT_EQ(Replayed.CompiledCycles, Direct.CompiledCycles);
  EXPECT_EQ(Replayed.Mem, Direct.Mem);
  EXPECT_EQ(Replayed.Sites, Direct.Sites);
}

TEST(DifferentialTest, BatchedDispatchMatchesPerEventForEveryWorkload) {
  // The batched consume() overrides (MemorySystem's peek/commit fast
  // path, CountingSink's loop) against the one-virtual-call-per-event
  // reference, across every Table 3 workload on all three machines —
  // including the walked-TLB, RPT-prefetching Modern3L, whose batched
  // clean-hit loop must observe loads at the same clock values the
  // per-event path does: stats, per-site stats, and cycles must be
  // bit-identical.
  const std::vector<sim::MachineConfig> Machines = {
      (*sim::MachineConfig::byName("pentium4")),
      (*sim::MachineConfig::byName("athlonmp")),
      (*sim::MachineConfig::byName("modern3l"))};
  for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads()) {
    workloads::RunOptions Opt;
    Opt.Machine = Machines[0];
    Opt.Algo = workloads::Algorithm::InterIntra;
    Opt.Config = tinyConfig();
    TraceBuffer Buf;
    Opt.Record = &Buf;
    workloads::runWorkload(Spec, Opt);
    ASSERT_FALSE(Buf.overflowed()) << Spec.Name;

    for (const sim::MachineConfig &Machine : Machines) {
      std::string Tag = Spec.Name + " on " + Machine.Name;
      sim::MemorySystem Batched(Machine), PerEvent(Machine);
      ASSERT_TRUE(replay(Buf, Batched)) << Tag;
      ASSERT_TRUE(replayPerEvent(Buf, PerEvent)) << Tag;
      EXPECT_EQ(Batched.stats(), PerEvent.stats()) << Tag;
      EXPECT_EQ(Batched.cycles(), PerEvent.cycles()) << Tag;
      EXPECT_EQ(Batched.siteStats(), PerEvent.siteStats()) << Tag;
    }

    sim::CountingSink A, B;
    ASSERT_TRUE(replay(Buf, A)) << Spec.Name;
    ASSERT_TRUE(replayPerEvent(Buf, B)) << Spec.Name;
    EXPECT_EQ(A.TickCalls, B.TickCalls) << Spec.Name;
    EXPECT_EQ(A.TicksTotal, B.TicksTotal) << Spec.Name;
    EXPECT_EQ(A.Loads, B.Loads) << Spec.Name;
    EXPECT_EQ(A.Stores, B.Stores) << Spec.Name;
    EXPECT_EQ(A.Prefetches, B.Prefetches) << Spec.Name;
    EXPECT_EQ(A.GuardedLoads, B.GuardedLoads) << Spec.Name;
    EXPECT_EQ(A.GuardedLoadFaults, B.GuardedLoadFaults) << Spec.Name;
    EXPECT_EQ(A.LoadSites, B.LoadSites) << Spec.Name;
  }
}

// -- TraceCache -------------------------------------------------------------

harness::TraceCache::Entry makeEntry(unsigned Loads, uint64_t Tag) {
  harness::TraceCache::Entry E;
  for (unsigned I = 0; I != Loads; ++I)
    E.Buf.load(0x1000 + 64 * I, 0);
  E.Buf.finish();
  E.ExecSide.ReturnValue = Tag;
  return E;
}

TEST(TraceCacheTest, LruEvictsLeastRecentlyUsed) {
  harness::TraceCache Cache(3000); // Room for ~2 entries of ~512+N bytes.
  harness::TraceCache::Entry A = makeEntry(200, 1), B = makeEntry(200, 2),
                             C = makeEntry(200, 3);
  Cache.insert("wl-a|BASELINE", std::move(A.Buf), A.ExecSide);
  Cache.insert("wl-b|BASELINE", std::move(B.Buf), B.ExecSide);
  ASSERT_NE(Cache.lookup("wl-a|BASELINE"), nullptr); // Refresh A.
  Cache.insert("wl-c|BASELINE", std::move(C.Buf), C.ExecSide);

  // B was least recently used, so B is the one pushed out.
  EXPECT_EQ(Cache.lookup("wl-b|BASELINE"), nullptr);
  auto GotA = Cache.lookup("wl-a|BASELINE");
  auto GotC = Cache.lookup("wl-c|BASELINE");
  ASSERT_NE(GotA, nullptr);
  ASSERT_NE(GotC, nullptr);
  EXPECT_EQ(GotA->ExecSide.ReturnValue, 1u);
  EXPECT_EQ(GotC->ExecSide.ReturnValue, 3u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_LE(Cache.bytesInUse(), Cache.budgetBytes());
}

TEST(TraceCacheTest, ZeroBudgetHoldsNothing) {
  harness::TraceCache Cache(0);
  harness::TraceCache::Entry E = makeEntry(10, 9);
  Cache.insert("wl|X", std::move(E.Buf), E.ExecSide);
  EXPECT_EQ(Cache.lookup("wl|X"), nullptr);
  EXPECT_EQ(Cache.bytesInUse(), 0u);
}

TEST(TraceCacheTest, ReservedEventsFollowsTheLatestRecording) {
  harness::TraceCache Cache(1 << 20);
  EXPECT_EQ(Cache.reservedEvents("jess"), 0u);
  harness::TraceCache::Entry E = makeEntry(123, 0);
  uint64_t Events = E.Buf.events();
  Cache.insert("jess|BASELINE|scale=x", std::move(E.Buf), E.ExecSide);
  // Keyed by workload (the signature's first field), not full signature:
  // a different algorithm's recording still benefits from the hint.
  EXPECT_EQ(Cache.reservedEvents("jess"), Events);
  EXPECT_EQ(Cache.reservedEvents("db"), 0u);
}

TEST(TraceCacheTest, SpillDirectoryServesEvictedAndCrossProcessHits) {
  std::string Dir = ::testing::TempDir() + "/spf-trace-spill";
  harness::TraceCache::Entry A = makeEntry(300, 7), B = makeEntry(300, 8);

  {
    harness::TraceCache Cache(1800, Dir); // Fits one entry at a time.
    Cache.insert("wl-a|SIG", std::move(A.Buf), A.ExecSide);
    Cache.insert("wl-b|SIG", std::move(B.Buf), B.ExecSide); // Evicts A.
    ASSERT_GE(Cache.stats().Evictions, 1u);

    // The evicted entry comes back from disk.
    auto GotA = Cache.lookup("wl-a|SIG");
    ASSERT_NE(GotA, nullptr);
    EXPECT_EQ(GotA->ExecSide.ReturnValue, 7u);
    EXPECT_GE(Cache.stats().SpillLoads, 1u);
  }

  // A fresh cache (new process, same --trace-dir) replays the spill.
  harness::TraceCache Fresh(1 << 20, Dir);
  auto Got = Fresh.lookup("wl-a|SIG");
  ASSERT_NE(Got, nullptr);
  EXPECT_EQ(Got->ExecSide.ReturnValue, 7u);
  EXPECT_GT(Got->Buf.events(), 0u);

  // A different signature that hash-collides-or-not must never be served
  // someone else's trace.
  EXPECT_EQ(Fresh.lookup("wl-z|OTHER"), nullptr);
}

std::vector<std::filesystem::path> spillFiles(const std::string &Dir) {
  std::vector<std::filesystem::path> Files;
  std::error_code EC;
  for (const auto &DE : std::filesystem::directory_iterator(Dir, EC))
    Files.push_back(DE.path());
  return Files;
}

TEST(TraceCacheTest, MmapAndHeapSpillReloadsAreIdentical) {
  std::string Dir = ::testing::TempDir() + "/spf-mmap-vs-heap";
  std::filesystem::remove_all(Dir);
  harness::TraceCache::Entry E = makeEntry(400, 11);
  std::vector<AccessEvent> Expected = decodeAll(E.Buf);
  {
    harness::TraceCache Cache(1 << 20, Dir);
    Cache.insert("wl|MODES", std::move(E.Buf), E.ExecSide);
    ASSERT_GE(Cache.stats().SpillStores, 1u);
  }

  harness::TraceCache Mapped(1 << 20, Dir, /*UseMmap=*/true);
  harness::TraceCache Heap(1 << 20, Dir, /*UseMmap=*/false);
  auto GotM = Mapped.lookup("wl|MODES");
  auto GotH = Heap.lookup("wl|MODES");
  ASSERT_NE(GotM, nullptr);
  ASSERT_NE(GotH, nullptr);

  // The mmap reload borrows the file's pages; the heap reload borrows a
  // shared heap copy. Same events, same execution side, either way.
  EXPECT_TRUE(GotM->Buf.borrowed());
  EXPECT_TRUE(GotH->Buf.borrowed());
  EXPECT_EQ(GotM->ExecSide.ReturnValue, 11u);
  EXPECT_EQ(GotH->ExecSide.ReturnValue, 11u);
  EXPECT_EQ(decodeAll(GotM->Buf), Expected);
  EXPECT_EQ(decodeAll(GotH->Buf), Expected);

  // And both replay identically through a real machine.
  sim::MemorySystem FromMap((*sim::MachineConfig::byName("pentium4")));
  sim::MemorySystem FromHeap((*sim::MachineConfig::byName("pentium4")));
  ASSERT_TRUE(replay(GotM->Buf, FromMap));
  ASSERT_TRUE(replay(GotH->Buf, FromHeap));
  EXPECT_EQ(FromMap.stats(), FromHeap.stats());
  EXPECT_EQ(FromMap.cycles(), FromHeap.cycles());
}

TEST(TraceCacheTest, CorruptSpillFilesAreACleanMissAndUnlinked) {
  std::string Dir = ::testing::TempDir() + "/spf-corrupt-spill";
  std::filesystem::remove_all(Dir);
  {
    harness::TraceCache Cache(1 << 20, Dir);
    harness::TraceCache::Entry E = makeEntry(300, 5);
    Cache.insert("wl|CORRUPT", std::move(E.Buf), E.ExecSide);
    ASSERT_GE(Cache.stats().SpillStores, 1u);
  }
  auto Files = spillFiles(Dir);
  ASSERT_EQ(Files.size(), 1u);
  std::string Path = Files[0].string();
  std::string Good;
  {
    std::ifstream IS(Path, std::ios::binary);
    std::stringstream SS;
    SS << IS.rdbuf();
    Good = SS.str();
  }
  ASSERT_GT(Good.size(), 64u);

  uint64_t Rng = 0x5b111bad;
  auto RunCase = [&](const std::string &Bytes, bool UseMmap,
                     const std::string &What) {
    {
      std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
      OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    }
    harness::TraceCache Fresh(1 << 20, Dir, UseMmap);
    EXPECT_EQ(Fresh.lookup("wl|CORRUPT"), nullptr) << What;
    EXPECT_EQ(Fresh.stats().SpillDecodeErrors, 1u) << What;
    EXPECT_EQ(Fresh.stats().Misses, 1u) << What;
    // The bad file is unlinked, so the next sweep re-records instead of
    // tripping over it again.
    EXPECT_TRUE(spillFiles(Dir).empty()) << What;
  };

  for (bool UseMmap : {true, false}) {
    std::string Mode = UseMmap ? " (mmap)" : " (heap)";
    // Truncations at every byte offset, including the empty file.
    for (size_t Len = 0; Len != Good.size(); ++Len)
      RunCase(Good.substr(0, Len), UseMmap,
              "truncated at " + std::to_string(Len) + Mode);
    // Seeded single-bit flips across the whole blob.
    for (unsigned Round = 0; Round != 200; ++Round) {
      size_t Byte = splitmix64(Rng) % Good.size();
      std::string Bad = Good;
      Bad[Byte] = static_cast<char>(Bad[Byte] ^ (1u << (splitmix64(Rng) % 8)));
      RunCase(Bad, UseMmap,
              "bit flip at " + std::to_string(Byte) + Mode);
    }
  }

  // The pristine blob still loads (sanity that only corruption misses).
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS.write(Good.data(), static_cast<std::streamsize>(Good.size()));
  }
  harness::TraceCache Fresh(1 << 20, Dir);
  auto Got = Fresh.lookup("wl|CORRUPT");
  ASSERT_NE(Got, nullptr);
  EXPECT_EQ(Got->ExecSide.ReturnValue, 5u);
}

TEST(TraceCacheTest, FailedSpillPublishIsCountedAndLeavesNoTmpFile) {
  // Learn the deterministic spill file name for the signature.
  std::string Probe = ::testing::TempDir() + "/spf-rename-probe";
  std::filesystem::remove_all(Probe);
  {
    harness::TraceCache Cache(1 << 20, Probe);
    harness::TraceCache::Entry E = makeEntry(50, 3);
    Cache.insert("wl|RENAME", std::move(E.Buf), E.ExecSide);
  }
  auto ProbeFiles = spillFiles(Probe);
  ASSERT_EQ(ProbeFiles.size(), 1u);
  std::string Name = ProbeFiles[0].filename().string();

  // Occupy that path with a non-empty directory: rename(2) cannot
  // replace it, so the publish must fail.
  std::string Dir = ::testing::TempDir() + "/spf-rename-fail";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir + "/" + Name + "/blocker");

  harness::TraceCache Cache(1 << 20, Dir);
  harness::TraceCache::Entry E = makeEntry(50, 3);
  Cache.insert("wl|RENAME", std::move(E.Buf), E.ExecSide);
  EXPECT_EQ(Cache.stats().SpillPublishErrors, 1u);

  // No temp-file litter: the only directory entry is our blocker.
  for (const std::filesystem::path &P : spillFiles(Dir))
    EXPECT_TRUE(std::filesystem::is_directory(P)) << P;

  // The in-memory entry still serves...
  EXPECT_NE(Cache.lookup("wl|RENAME"), nullptr);
  // ...but a fresh process finds nothing on disk (and no crash from the
  // directory squatting on the spill path).
  harness::TraceCache Fresh(1 << 20, Dir);
  EXPECT_EQ(Fresh.lookup("wl|RENAME"), nullptr);
}

// -- runPlan integration ----------------------------------------------------

TEST(RunPlanTraceTest, ReuseChangesNoStatisticAtAnyWorkerCount) {
  harness::ExperimentPlan Plan;
  std::vector<const workloads::WorkloadSpec *> Specs = {
      workloads::findWorkload("jess"), workloads::findWorkload("db")};
  ASSERT_TRUE(Specs[0] && Specs[1]);
  Plan.addSweep(Specs,
                {workloads::Algorithm::Baseline, workloads::Algorithm::Inter,
                 workloads::Algorithm::InterIntra},
                {(*sim::MachineConfig::byName("pentium4")),
                 (*sim::MachineConfig::byName("athlonmp"))},
                tinyConfig(), "trace");
  ASSERT_EQ(Plan.size(), 12u);

  harness::TraceOptions Off;
  Off.Enabled = false;
  harness::ExperimentResult Direct = harness::runPlan(Plan, 1, Off);
  EXPECT_FALSE(Direct.TraceEnabled);

  for (unsigned Jobs : {1u, 8u}) {
    harness::ExperimentResult Reused =
        harness::runPlan(Plan, Jobs, harness::TraceOptions());
    EXPECT_TRUE(Reused.TraceEnabled);
    ASSERT_EQ(Reused.Cells.size(), Direct.Cells.size());
    for (unsigned I = 0; I != Plan.size(); ++I) {
      const workloads::RunResult &D = Direct.run(I);
      const workloads::RunResult &R = Reused.run(I);
      std::string Tag = Plan.cells()[I].Spec->Name + " cell " +
                        std::to_string(I) + " jobs " + std::to_string(Jobs);
      EXPECT_EQ(R.CompiledCycles, D.CompiledCycles) << Tag;
      EXPECT_EQ(R.Mem, D.Mem) << Tag;
      EXPECT_EQ(R.Sites, D.Sites) << Tag;
      EXPECT_EQ(R.Retired, D.Retired) << Tag;
      EXPECT_EQ(R.ReturnValue, D.ReturnValue) << Tag;
      EXPECT_EQ(R.SelfCheckOk, D.SelfCheckOk) << Tag;
      EXPECT_EQ(R.Exec.Retired, D.Exec.Retired) << Tag;
      EXPECT_EQ(R.Exec.PrefetchRelated, D.Exec.PrefetchRelated) << Tag;
      EXPECT_EQ(R.Exec.GcRuns, D.Exec.GcRuns) << Tag;
    }
    // At one worker the schedule is the plan order, so the two baseline
    // cells of each workload (P4 first, Athlon second) share one trace.
    if (Jobs == 1)
      EXPECT_GE(Reused.Trace.Hits, 2u);
  }
}

TEST(RunPlanTraceTest, JsonReportCarriesTraceFields) {
  harness::ExperimentPlan Plan;
  std::vector<const workloads::WorkloadSpec *> Specs = {
      workloads::findWorkload("db")};
  ASSERT_TRUE(Specs[0]);
  Plan.addSweep(Specs, {workloads::Algorithm::Baseline},
                {(*sim::MachineConfig::byName("pentium4")),
                 (*sim::MachineConfig::byName("athlonmp"))},
                tinyConfig(), "json");
  harness::ExperimentResult Result =
      harness::runPlan(Plan, 1, harness::TraceOptions());

  std::ostringstream OS;
  harness::writeJsonReport(OS, Plan, Result, 0.05, 1);
  std::string Json = OS.str();
  for (const char *Key :
       {"\"schema\":\"spf-sweep-v2\"", "\"l1_store_misses\"",
        "\"cycles_stalled_on_loads\"", "\"load_sites\"",
        "\"site_stats_hash\"", "\"replayed\"", "\"interpret_us\"",
        "\"replay_us\"", "\"trace\"", "\"hits\"", "\"budget_bytes\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;

  // Two baseline cells, one signature: the second must have replayed.
  EXPECT_NE(Json.find("\"replayed\":true"), std::string::npos);
  EXPECT_EQ(Result.Trace.Hits, 1u);
  EXPECT_EQ(Result.Trace.Misses, 1u);
}

// -- Spill-directory budget, stale tmp cleanup, injected disk faults ---------

/// The on-disk size of one makeEntry(300, ...) spill file, measured so
/// the budget tests track the codec instead of hard-coding sizes.
uintmax_t probeSpillFileBytes() {
  std::string Dir = ::testing::TempDir() + "/spf-spill-probe";
  std::filesystem::remove_all(Dir);
  harness::TraceCache Cache(1 << 20, Dir);
  harness::TraceCache::Entry E = makeEntry(300, 0);
  Cache.insert("wl-probe|SIZE", std::move(E.Buf), E.ExecSide);
  auto Files = spillFiles(Dir);
  return Files.size() == 1 ? std::filesystem::file_size(Files[0]) : 0;
}

TEST(SpillBudgetTest, DirectoryBudgetEvictsLeastRecentlyReplayedFiles) {
  std::string Dir = ::testing::TempDir() + "/spf-spill-budget";
  std::filesystem::remove_all(Dir);
  const uintmax_t One = probeSpillFileBytes();
  ASSERT_GT(One, 0u);

  // Room for two files and change — the third insert must evict.
  const size_t Budget = static_cast<size_t>(One * 5 / 2);
  harness::TraceCache Cache(1 << 20, Dir, harness::TraceCache::mmapFromEnv(),
                            Budget);
  harness::TraceCache::Entry A = makeEntry(300, 1), B = makeEntry(300, 2),
                             C = makeEntry(300, 3), D = makeEntry(300, 4);
  Cache.insert("wl-a|BUDGET", std::move(A.Buf), A.ExecSide);
  Cache.insert("wl-b|BUDGET", std::move(B.Buf), B.ExecSide);
  Cache.insert("wl-c|BUDGET", std::move(C.Buf), C.ExecSide);
  Cache.insert("wl-d|BUDGET", std::move(D.Buf), D.ExecSide);
  EXPECT_GT(Cache.stats().SpillEvictions, 0u);

  // The directory really shrank: total bytes fit the budget.
  uintmax_t Total = 0;
  for (const std::filesystem::path &P : spillFiles(Dir))
    Total += std::filesystem::file_size(P);
  EXPECT_LE(Total, Budget);

  // The newest spill survives on disk for a fresh process; the oldest
  // was evicted and reads as a clean miss.
  harness::TraceCache Fresh(1 << 20, Dir);
  EXPECT_NE(Fresh.lookup("wl-d|BUDGET"), nullptr);
  EXPECT_EQ(Fresh.lookup("wl-a|BUDGET"), nullptr);
}

TEST(SpillBudgetTest, ZeroBudgetMeansUnlimited) {
  std::string Dir = ::testing::TempDir() + "/spf-spill-unlimited";
  std::filesystem::remove_all(Dir);
  harness::TraceCache Cache(1 << 20, Dir, harness::TraceCache::mmapFromEnv(),
                            /*SpillBudgetBytes=*/0);
  for (unsigned I = 0; I != 6; ++I) {
    harness::TraceCache::Entry E = makeEntry(300, I);
    Cache.insert("wl-" + std::to_string(I) + "|NOLIMIT", std::move(E.Buf),
                 E.ExecSide);
  }
  EXPECT_EQ(Cache.stats().SpillEvictions, 0u);
  EXPECT_EQ(spillFiles(Dir).size(), 6u);
}

TEST(SpillBudgetTest, ReplayRefreshesASpillFilesLruPosition) {
  std::string Dir = ::testing::TempDir() + "/spf-spill-touch";
  std::filesystem::remove_all(Dir);
  // In-memory budget 0: every lookup goes to disk, exercising the
  // touch-on-replay path. The spill budget holds two files, not three.
  const uintmax_t One = probeSpillFileBytes();
  ASSERT_GT(One, 0u);
  harness::TraceCache Cache(0, Dir, harness::TraceCache::mmapFromEnv(),
                            static_cast<size_t>(One * 5 / 2));
  harness::TraceCache::Entry A = makeEntry(300, 1), B = makeEntry(300, 2),
                             C = makeEntry(300, 3);
  Cache.insert("wl-a|TOUCH", std::move(A.Buf), A.ExecSide);
  Cache.insert("wl-b|TOUCH", std::move(B.Buf), B.ExecSide);
  ASSERT_NE(Cache.lookup("wl-a|TOUCH"), nullptr); // A is now hottest.
  Cache.insert("wl-c|TOUCH", std::move(C.Buf), C.ExecSide); // Evicts B.

  EXPECT_NE(Cache.lookup("wl-a|TOUCH"), nullptr);
  EXPECT_EQ(Cache.lookup("wl-b|TOUCH"), nullptr);
  EXPECT_NE(Cache.lookup("wl-c|TOUCH"), nullptr);
}

TEST(SpillBudgetTest, StaleTmpFilesAreSweptAtOpenLiveOnesSpared) {
  std::string Dir = ::testing::TempDir() + "/spf-stale-tmp";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  // A crashed writer's tmp file: pid 999999999 cannot exist (beyond
  // kernel.pid_max), so the liveness probe fails and the file goes.
  std::string Stale = Dir + "/spf-trace-dead.tmp.999999999";
  // Our own pid is alive: its tmp file must be spared (a supervised
  // sibling worker could be mid-publish).
  std::string Live =
      Dir + "/spf-trace-live.tmp." + std::to_string(::getpid());
  // An unparsable suffix is debris too.
  std::string Junk = Dir + "/spf-trace-junk.tmp.notanumber";
  for (const std::string &P : {Stale, Live, Junk})
    std::ofstream(P) << "x";

  harness::TraceCache Cache(1 << 20, Dir);
  EXPECT_EQ(Cache.stats().StaleTmpRemoved, 2u);
  EXPECT_FALSE(std::filesystem::exists(Stale));
  EXPECT_TRUE(std::filesystem::exists(Live));
  EXPECT_FALSE(std::filesystem::exists(Junk));
}

TEST(SpillFaultTest, InjectedWriteFaultCountsAPublishErrorAndDegrades) {
  std::string Dir = ::testing::TempDir() + "/spf-spill-fault";
  std::filesystem::remove_all(Dir);
  harness::TraceCache Cache(1 << 20, Dir);

  auto C = support::FaultConfig::parse("disk-write:1:13");
  ASSERT_TRUE(C.has_value());
  support::FaultInjector Inj(*C);
  harness::TraceCache::Entry E = makeEntry(100, 7);
  {
    support::FaultScope Scope(Inj);
    Cache.insert("wl|FAULT", std::move(E.Buf), E.ExecSide);
  }
  EXPECT_EQ(Cache.stats().SpillPublishErrors, 1u);
  EXPECT_TRUE(spillFiles(Dir).empty()); // Nothing landed, no tmp litter.
  // The in-memory entry still serves: the sweep degrades, never breaks.
  EXPECT_NE(Cache.lookup("wl|FAULT"), nullptr);
}

} // namespace
