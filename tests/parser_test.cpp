//===- tests/parser_test.cpp - Textual IR round trips ---------------------===//
//
// The printer and parser are mutual inverses: print -> parse -> print is
// the identity on text, and parsed methods behave identically under the
// interpreter. Exercised over hand-written snippets, every workload's hot
// method, and prefetch-transformed code.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace spf;
using namespace spf::ir;

namespace {

std::string printed(Method *M) {
  std::ostringstream OS;
  printMethod(OS, M);
  return OS.str();
}

TEST(ParserTest, ParsesAMinimalMethod) {
  vm::TypeTable Types;
  Module M;
  std::string Text = R"(method i32 addOne(i32 %arg0) {
entry:
  %1 = add i32 %arg0, 1
  ret %1
}
)";
  std::string Error;
  Method *Fn = parseMethod(M, Types, Text, &Error);
  ASSERT_NE(Fn, nullptr) << Error;
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(Fn->name(), "addOne");
  EXPECT_EQ(Fn->returnType(), Type::I32);
  EXPECT_EQ(Fn->numArgs(), 1u);
  EXPECT_EQ(printed(Fn), Text);
}

TEST(ParserTest, ParsesControlFlowAndPhis) {
  vm::TypeTable Types;
  Module M;
  std::string Text = R"(method i32 count(i32 %arg0) {
entry:
  jump header
header:  ; preds: entry body
  %2 = phi i32 [entry: 0], [body: %5]
  %3 = cmplt i32 %2, %arg0
  br %3 ? body : exit
body:  ; preds: header
  %5 = add i32 %2, 1
  jump header
exit:  ; preds: header
  ret %2
}
)";
  std::string Error;
  Method *Fn = parseMethod(M, Types, Text, &Error);
  ASSERT_NE(Fn, nullptr) << Error;
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(printed(Fn), Text);

  // And it runs: count(7) == 7.
  vm::HeapConfig HC;
  HC.HeapBytes = 1 << 16;
  vm::Heap Heap(Types, HC);
  sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter Interp(Heap, Mem);
  EXPECT_EQ(Interp.run(Fn, {7}), 7u);
}

TEST(ParserTest, ParsesHeapOperations) {
  vm::TypeTable Types;
  auto *Cls = Types.addClass("Token");
  Types.addField(Cls, "facts", Type::Ref);
  Types.addField(Cls, "size", Type::I32);
  Module M;
  std::string Text = R"(method i32 touch(ref %arg0.tok) {
entry:
  %1 = getfield %arg0.tok.Token::facts (+16)
  %2 = arraylength %1
  %3 = aload.ref %1[0]
  putfield %arg0.tok.Token::size = %2
  %5 = getfield %arg0.tok.Token::size (+24)
  astore %1[1] = %3
  ret %5
}
)";
  std::string Error;
  Method *Fn = parseMethod(M, Types, Text, &Error);
  ASSERT_NE(Fn, nullptr) << Error;
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(printed(Fn), Text);
}

TEST(ParserTest, ParsesPrefetchPrimitives) {
  vm::TypeTable Types;
  Module M;
  std::string Text = R"(method void pf(ref %arg0, i32 %arg1) {
entry:
  prefetch [%arg0 + %arg1*8 + 24]
  %3.pref = spec_load [%arg0 + %arg1*8 + 24]
  prefetch.guarded [%3.pref + 16]
  prefetch [%arg0 - 8]
  ret
}
)";
  std::string Error;
  Method *Fn = parseMethod(M, Types, Text, &Error);
  ASSERT_NE(Fn, nullptr) << Error;
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(printed(Fn), Text);
}

TEST(ParserTest, RejectsMalformedInput) {
  vm::TypeTable Types;
  Module M;
  std::string Error;

  EXPECT_EQ(parseMethod(M, Types, "", &Error), nullptr);
  EXPECT_FALSE(Error.empty());

  EXPECT_EQ(parseMethod(M, Types,
                        "method i32 f() {\nentry:\n  ret %99\n}\n", &Error),
            nullptr);
  EXPECT_NE(Error.find("undefined value"), std::string::npos);

  EXPECT_EQ(parseMethod(M, Types,
                        "method i32 f() {\nentry:\n  jump nowhere\n}\n",
                        &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown block"), std::string::npos);

  EXPECT_EQ(parseMethod(
                M, Types,
                "method i32 f(ref %arg0) {\nentry:\n"
                "  %1 = getfield %arg0.Nope::f (+16)\n  ret 0\n}\n",
                &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown class"), std::string::npos);

  EXPECT_EQ(parseMethod(M, Types,
                        "method i32 f() {\nentry:\n  frobnicate 1, 2\n}\n",
                        &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown operation"), std::string::npos);
}

TEST(ParserTest, RoundTripsEveryWorkloadHotMethod) {
  for (const auto &Spec : workloads::allWorkloads()) {
    workloads::WorkloadConfig Cfg;
    Cfg.Scale = 0.02;
    workloads::BuiltWorkload W = Spec.Build(Cfg);
    // Hot methods plus helpers, but not the synthesized population (slow
    // and redundant): take the named (non "pop.") units.
    for (const auto &CU : W.CompileUnits) {
      if (CU.M->name().rfind("pop.", 0) == 0)
        continue;
      std::string Before = printed(CU.M);
      std::string Error;
      Method *Again = parseMethod(*W.Module, *W.Types, Before, &Error);
      ASSERT_NE(Again, nullptr)
          << Spec.Name << "/" << CU.M->name() << ": " << Error;
      EXPECT_TRUE(verifyMethod(Again)) << Spec.Name << "/" << CU.M->name();
      EXPECT_EQ(printed(Again), Before)
          << Spec.Name << "/" << CU.M->name() << " did not round-trip";
    }
  }
}

TEST(ParserTest, RoundTripsPrefetchTransformedCode) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  workloads::BuiltWorkload W = Spec->Build(Cfg);
  Method *Find = W.Module->findMethod("Node2.findInMemory");

  core::PrefetchPassOptions Opts = workloads::passOptionsFor(
      (*sim::MachineConfig::byName("pentium4")), core::PrefetchMode::InterIntra);
  core::PrefetchPass Pass(*W.Heap, Opts);
  core::PrefetchPassResult R = Pass.run(Find, W.CompileUnits[0].Args);
  ASSERT_GT(R.CodeGen.SpecLoads, 0u);

  std::string Before = printed(Find);
  EXPECT_NE(Before.find("spec_load"), std::string::npos);
  std::string Error;
  Method *Again = parseMethod(*W.Module, *W.Types, Before, &Error);
  ASSERT_NE(Again, nullptr) << Error;
  EXPECT_TRUE(verifyMethod(Again));
  EXPECT_EQ(printed(Again), Before);
}

TEST(ParserTest, ParsedMethodBehavesIdentically) {
  // The parsed copy of findInMemory must retire the same instructions and
  // return the same result as the original.
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  workloads::BuiltWorkload W = Spec->Build(Cfg);
  Method *Find = W.Module->findMethod("Node2.findInMemory");
  const auto &Args = W.CompileUnits[0].Args;

  std::string Error;
  Method *Copy = parseMethod(*W.Module, *W.Types, printed(Find), &Error);
  ASSERT_NE(Copy, nullptr) << Error;

  sim::MemorySystem M1((*sim::MachineConfig::byName("pentium4")));
  sim::MemorySystem M2((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I1(*W.Heap, M1);
  exec::Interpreter I2(*W.Heap, M2);
  uint64_t R1 = I1.run(Find, Args);
  uint64_t R2 = I2.run(Copy, Args);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(I1.stats().Retired, I2.stats().Retired);
  EXPECT_EQ(M1.cycles(), M2.cycles());
}

TEST(ParserTest, ParsesFloatConstantsLosslessly) {
  vm::TypeTable Types;
  Module M;
  std::string Text = R"(method f64 fp(f64 %arg0) {
entry:
  %1 = mul f64 %arg0, 0.15625
  %2 = add f64 %1, 0.25
  ret %2
}
)";
  std::string Error;
  Method *Fn = parseMethod(M, Types, Text, &Error);
  ASSERT_NE(Fn, nullptr) << Error;
  EXPECT_EQ(printed(Fn), Text);
}

} // namespace
