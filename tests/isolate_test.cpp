//===- tests/isolate_test.cpp - Supervised (out-of-process) cells ---------===//
//
// The isolation contract, tested against this binary itself: the test
// executable doubles as its own worker (custom main below dispatches the
// hidden --run-cell protocol before gtest starts), exactly like the
// bench binaries do. Locks the tentpole invariants: supervised per-cell
// statistics are bit-identical to in-process execution at any worker
// count, injected worker crashes are quarantined without failing the
// sweep or perturbing surviving cells, and a wedged worker is SIGKILLed
// at the supervisor deadline.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Journal.h"
#include "harness/JsonWriter.h"
#include "harness/Subprocess.h"
#include "harness/Supervisor.h"
#include "support/Process.h"
#include "workloads/Runner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <sstream>
#include <string>

using namespace spf;
using namespace spf::harness;

namespace {

int GArgc = 0;
char **GArgv = nullptr;

/// The fixed plan this binary runs — both as supervisor (tests) and as
/// worker (main() dispatch). Must be deterministic: the worker re-execs
/// this binary and rebuilds it from scratch.
const ExperimentPlan &testPlan() {
  static const ExperimentPlan Plan = [] {
    ExperimentPlan P;
    for (const char *Name : {"jess", "db"})
      for (workloads::Algorithm Algo :
           {workloads::Algorithm::Baseline, workloads::Algorithm::InterIntra}) {
        ExperimentCell C;
        C.Group = "isolate-test";
        C.Spec = workloads::findWorkload(Name);
        C.Opt.Config.Scale = 0.05;
        C.Opt.Algo = Algo;
        P.add(std::move(C));
      }
    return P;
  }();
  return Plan;
}

/// Saves and restores one environment variable around a test body.
struct ScopedEnv {
  std::string Name;
  bool HadOld;
  std::string Old;

  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    const char *O = std::getenv(Name);
    HadOld = O != nullptr;
    Old = O ? O : "";
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~ScopedEnv() {
    if (HadOld)
      setenv(Name.c_str(), Old.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

RunPlanOptions isolatedOpts() {
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Isolate.Enabled = true;
  const std::string Self = support::selfExecutablePath(GArgv[0]);
  Opts.Isolate.WorkerCommand = [Self](unsigned Cell, unsigned Attempt) {
    return workerArgv(Self, GArgc, GArgv, /*PlanSeq=*/0, Cell, Attempt);
  };
  return Opts;
}

/// The deterministic (simulation-side) half of a cell result — everything
/// except wall-clock bookkeeping and the attempt count (retries change
/// how often a cell ran, never what it computed), serialized for exact
/// comparison.
std::string deterministicFields(const CellResult &C) {
  CellResult N = C;
  N.Run.JitTotalUs = N.Run.JitPrefetchUs = 0;
  N.Run.InterpretUs = N.Run.ReplayUs = 0;
  N.Run.Replayed = false;
  N.Attempts = 0;
  std::ostringstream OS;
  JsonWriter J(OS);
  writeCellRecordJson(J, N);
  return OS.str();
}

// -- Supervised == in-process ------------------------------------------------

TEST(IsolateTest, SupervisedStatsAreBitIdenticalToInProcess) {
  ScopedEnv F("SPF_FAULTS", nullptr);
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  const ExperimentPlan &Plan = testPlan();

  RunPlanOptions Direct;
  Direct.Trace.Enabled = false;
  ExperimentResult InProc = runPlan(Plan, 1, Direct);
  ASSERT_TRUE(InProc.ok());

  for (unsigned Jobs : {1u, 8u}) {
    ExperimentResult Sup = runPlan(Plan, Jobs, isolatedOpts());
    ASSERT_TRUE(Sup.ok()) << (Sup.Failures.empty() ? "" : Sup.Failures[0]);
    EXPECT_TRUE(Sup.Isolated);
    ASSERT_EQ(Sup.Cells.size(), InProc.Cells.size());
    for (unsigned I = 0; I != Plan.size(); ++I) {
      ASSERT_TRUE(Sup.Cells[I].Ran) << "jobs=" << Jobs << " cell " << I;
      EXPECT_EQ(Sup.Cells[I].Attempts, InProc.Cells[I].Attempts)
          << "jobs=" << Jobs << " cell " << I;
      EXPECT_EQ(deterministicFields(Sup.Cells[I]),
                deterministicFields(InProc.Cells[I]))
          << "jobs=" << Jobs << " cell " << I;
    }
    EXPECT_TRUE(Sup.Quarantine.empty());
  }
}

// -- Crash containment -------------------------------------------------------

TEST(IsolateTest, InjectedCrashIsQuarantinedWithTheSignal) {
  ScopedEnv F("SPF_FAULTS", "crash:1:7"); // Every attempt aborts.
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  const ExperimentPlan &Plan = testPlan();

  ExperimentResult R = runPlan(Plan, 2, isolatedOpts());

  // Contained crashes are chaos working as intended: quarantined with
  // the signal on record, bounded retries, and a clean exit.
  EXPECT_TRUE(R.ok()) << (R.Failures.empty() ? "" : R.Failures[0]);
  ASSERT_EQ(R.Quarantine.size(), Plan.size());
  for (unsigned I = 0; I != Plan.size(); ++I) {
    EXPECT_FALSE(R.Cells[I].Ran);
    EXPECT_TRUE(R.Cells[I].Crashed);
    EXPECT_EQ(R.Cells[I].Signal, SIGABRT);
    EXPECT_EQ(R.Cells[I].Attempts, 3u); // Same bound as transients.
    EXPECT_EQ(R.Quarantine[I].Kind, "crashed");
    EXPECT_EQ(R.Quarantine[I].Signal, SIGABRT);
  }

  // The report records the crash verdicts.
  std::ostringstream OS;
  writeJsonReport(OS, Plan, R, 0.05, 2);
  std::string S = OS.str();
  EXPECT_NE(S.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(S.find("\"kind\":\"crashed\""), std::string::npos);
  EXPECT_NE(S.find("\"isolated\":true"), std::string::npos);
}

TEST(IsolateTest, CrashSurvivorsMatchTheCleanRun) {
  // Rate 0.5: with this seed some cells crash a first attempt and then
  // survive a retry (deterministic — the injector stream is seeded).
  // Every surviving cell's statistics must equal the clean run's: the
  // crash site fires before execution starts, so a retry that gets past
  // it runs the untouched simulation.
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  const ExperimentPlan &Plan = testPlan();

  RunPlanOptions Direct;
  Direct.Trace.Enabled = false;
  ExperimentResult Clean;
  {
    ScopedEnv F("SPF_FAULTS", nullptr);
    Clean = runPlan(Plan, 1, Direct);
  }
  ASSERT_TRUE(Clean.ok());

  ScopedEnv F("SPF_FAULTS", "crash:0.5:31");
  ExperimentResult Chaos = runPlan(Plan, 2, isolatedOpts());
  EXPECT_TRUE(Chaos.ok());

  bool SawRetriedSurvivor = false;
  for (unsigned I = 0; I != Plan.size(); ++I) {
    if (!Chaos.Cells[I].Ran)
      continue; // Crashed out entirely: quarantined, not compared.
    if (Chaos.Cells[I].Attempts > 1)
      SawRetriedSurvivor = true;
    EXPECT_EQ(deterministicFields(Chaos.Cells[I]),
              deterministicFields(Clean.Cells[I]))
        << "cell " << I;
  }
  EXPECT_TRUE(SawRetriedSurvivor); // Seed 31 crashes at least one first try.
}

TEST(IsolateTest, InProcessRunsNeverEvaluateTheCrashSite) {
  // The crash site is armed only inside workers: the same SPF_FAULTS
  // spec on an in-process plan must run every cell normally.
  ScopedEnv F("SPF_FAULTS", "crash:1:7");
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  RunPlanOptions Direct;
  Direct.Trace.Enabled = false;
  ExperimentResult R = runPlan(testPlan(), 2, Direct);
  EXPECT_TRUE(R.ok());
  for (const CellResult &C : R.Cells) {
    EXPECT_TRUE(C.Ran);
    EXPECT_FALSE(C.Crashed);
  }
}

// -- Supervisor deadline -----------------------------------------------------

TEST(IsolateTest, WedgedWorkerIsKilledAtTheDeadline) {
  // A worker that never even starts the protocol (plain sleep) must be
  // SIGKILLed by the supervisor-side deadline — containment without any
  // cooperation from the worker.
  support::WorkerLimits Limits;
  SpawnOutcome O =
      runWorkerProcess({"/bin/sh", "-c", "sleep 30"}, Limits, 0.5);
  EXPECT_FALSE(O.SpawnFailed) << O.SpawnError;
  EXPECT_TRUE(O.DeadlineKilled);
  EXPECT_EQ(O.Signal, SIGKILL);
}

TEST(IsolateTest, WorkerExitAndPipeOutputAreCaptured) {
  support::WorkerLimits Limits;
  SpawnOutcome O = runWorkerProcess(
      {"/bin/sh", "-c", "echo payload >&3; exit 7"}, Limits, 10.0);
  EXPECT_FALSE(O.SpawnFailed) << O.SpawnError;
  EXPECT_FALSE(O.DeadlineKilled);
  EXPECT_EQ(O.ExitCode, 7);
  EXPECT_EQ(O.Signal, 0);
  EXPECT_NE(O.Output.find("payload"), std::string::npos);
}

TEST(IsolateTest, AddressSpaceLimitContainsARunawayWorker) {
  // RLIMIT_AS is applied in the child: a worker that tries to allocate
  // past the cap dies (abort on bad_alloc or OOM signal) instead of
  // taking the machine down. sh + dd keeps this dependency-free.
  support::WorkerLimits Limits;
  Limits.MemBytes = 64ull << 20;
  SpawnOutcome O = runWorkerProcess(
      {"/bin/sh", "-c",
       "dd if=/dev/zero of=/dev/null bs=256M count=1 2>/dev/null"},
      Limits, 30.0);
  EXPECT_FALSE(O.SpawnFailed) << O.SpawnError;
  // dd cannot materialize a 256M buffer under a 64M cap: it either exits
  // nonzero or dies on a signal — anything but success.
  EXPECT_TRUE(O.ExitCode != 0 || O.Signal != 0);
}

// -- Worker protocol ---------------------------------------------------------

TEST(WorkerProtocolTest, ParseRoundTripsThroughWorkerArgv) {
  const std::string Self = support::selfExecutablePath(GArgv[0]);
  std::vector<std::string> Argv =
      workerArgv(Self, GArgc, GArgv, /*PlanSeq=*/2, /*Cell=*/17,
                 /*Attempt=*/1);
  std::vector<char *> CArgv;
  for (std::string &S : Argv)
    CArgv.push_back(S.data());
  auto Req =
      parseWorkerRequest(static_cast<int>(CArgv.size()), CArgv.data());
  ASSERT_TRUE(Req.has_value());
  EXPECT_EQ(Req->PlanSeq, 2u);
  EXPECT_EQ(Req->Cell, 17u);
  EXPECT_EQ(Req->Attempt, 1u);
  EXPECT_EQ(Req->ResultFd, WorkerResultFd);
}

TEST(WorkerProtocolTest, PlainInvocationIsNotAWorker) {
  EXPECT_FALSE(parseWorkerRequest(GArgc, GArgv).has_value());
}

} // namespace

/// Custom main: worker dispatch first (this is exactly what the bench
/// binaries' init()/runPlanCli() do), then gtest. Linked against
/// GTest::gtest only — gtest_main would swallow the worker protocol.
int main(int argc, char **argv) {
  GArgc = argc;
  GArgv = argv;
  if (auto Req = parseWorkerRequest(argc, argv)) {
    TraceOptions NoTrace;
    NoTrace.Enabled = false;
    runCellWorker(testPlan(), *Req, NoTrace); // Does not return.
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
