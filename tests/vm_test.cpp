//===- tests/vm_test.cpp - Object model and heap --------------------------===//

#include "vm/Heap.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::vm;

namespace {

class VmTest : public ::testing::Test {
protected:
  VmTest() {
    Cls = Types.addClass("Token");
    FRef = Types.addField(Cls, "facts", ir::Type::Ref);
    FI32 = Types.addField(Cls, "size", ir::Type::I32);
    FF64 = Types.addField(Cls, "weight", ir::Type::F64);

    HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    H = std::make_unique<Heap>(Types, HC);
  }

  TypeTable Types;
  ClassDesc *Cls;
  const FieldDesc *FRef;
  const FieldDesc *FI32;
  const FieldDesc *FF64;
  std::unique_ptr<Heap> H;
};

TEST_F(VmTest, FieldLayoutIsSequentialAndAligned) {
  EXPECT_EQ(FRef->Offset, 16u); // Right after the header.
  EXPECT_EQ(FI32->Offset, 24u);
  EXPECT_EQ(FF64->Offset, 32u); // 28 rounded up to 8.
  EXPECT_EQ(Cls->instanceSize(), 40u);
  EXPECT_EQ(Cls->findField("size"), FI32);
  EXPECT_EQ(Cls->findField("nope"), nullptr);
  EXPECT_EQ(FI32->Parent, Cls);
}

TEST_F(VmTest, ConsecutiveAllocationsHaveConstantPitch) {
  // The property every stride pattern in the paper rests on.
  Addr A = H->allocObject(*Cls);
  Addr B = H->allocObject(*Cls);
  Addr C = H->allocObject(*Cls);
  ASSERT_NE(A, 0u);
  EXPECT_EQ(B - A, C - B);
  EXPECT_EQ(B - A, 40u);
}

TEST_F(VmTest, ObjectsAreZeroInitialized) {
  Addr A = H->allocObject(*Cls);
  EXPECT_EQ(H->load(A + FRef->Offset, ir::Type::Ref), 0u);
  EXPECT_EQ(H->load(A + FI32->Offset, ir::Type::I32), 0u);
}

TEST_F(VmTest, TypedFieldAccessRoundTrips) {
  Addr A = H->allocObject(*Cls);
  H->store(A + FI32->Offset, ir::Type::I32, static_cast<uint64_t>(-7));
  EXPECT_EQ(static_cast<int64_t>(H->load(A + FI32->Offset, ir::Type::I32)),
            -7); // Sign-extended.
  H->store(A + FRef->Offset, ir::Type::Ref, A);
  EXPECT_EQ(H->load(A + FRef->Offset, ir::Type::Ref), A);
}

TEST_F(VmTest, I32StoresDoNotClobberNeighbors) {
  Addr A = H->allocObject(*Cls);
  H->store(A + FRef->Offset, ir::Type::Ref, 0xAABBCCDDEEFF0011ull);
  H->store(A + FI32->Offset, ir::Type::I32, 0x12345678);
  EXPECT_EQ(H->load(A + FRef->Offset, ir::Type::Ref), 0xAABBCCDDEEFF0011ull);
}

TEST_F(VmTest, ArrayHeaderAndElements) {
  Addr Arr = H->allocArray(ir::Type::I32, 10);
  ASSERT_NE(Arr, 0u);
  EXPECT_TRUE(H->isArray(Arr));
  EXPECT_EQ(H->arrayLength(Arr), 10u);
  EXPECT_EQ(H->arrayElemType(Arr), ir::Type::I32);
  EXPECT_EQ(H->elemAddr(Arr, 0), Arr + ObjectHeaderSize);
  EXPECT_EQ(H->elemAddr(Arr, 3), Arr + ObjectHeaderSize + 12);
  // 16 + 40 = 56 -> aligned 56.
  EXPECT_EQ(H->objectSize(Arr), 56u);

  Addr Obj = H->allocObject(*Cls);
  EXPECT_FALSE(H->isArray(Obj));
  EXPECT_EQ(H->objectSize(Obj), 40u);
}

TEST_F(VmTest, AllocationFailsGracefullyWhenFull) {
  HeapConfig Small;
  Small.HeapBytes = 256;
  Heap Tiny(Types, Small);
  Addr A = Tiny.allocObject(*Cls);
  EXPECT_NE(A, 0u);
  // Exhaust.
  while (Tiny.allocObject(*Cls))
    ;
  EXPECT_EQ(Tiny.allocObject(*Cls), 0u);
  EXPECT_EQ(Tiny.allocArray(ir::Type::I64, 1000), 0u);
}

TEST_F(VmTest, AddressClassification) {
  Addr Obj = H->allocObject(*Cls);
  EXPECT_TRUE(H->isHeapAddress(Obj));
  EXPECT_TRUE(H->isValidAccess(Obj + FI32->Offset, 4));
  EXPECT_FALSE(H->isHeapAddress(0));
  EXPECT_FALSE(H->isValidAccess(H->heapTop(), 8)); // Beyond frontier.
  EXPECT_FALSE(H->isValidAccess(H->heapTop() - 4, 8)); // Straddles it.

  Addr S = H->allocStatic(ir::Type::Ref);
  EXPECT_TRUE(H->isStaticAddress(S));
  EXPECT_FALSE(H->isHeapAddress(S));
  EXPECT_TRUE(H->isValidAccess(S, 8));
  ASSERT_EQ(H->staticRefSlots().size(), 1u);
  EXPECT_EQ(H->staticRefSlots()[0], S);

  Addr SInt = H->allocStatic(ir::Type::I32);
  EXPECT_EQ(H->staticRefSlots().size(), 1u); // Non-ref statics not roots.
  (void)SInt;
}

TEST_F(VmTest, MarkBitRoundTrips) {
  Addr Obj = H->allocObject(*Cls);
  EXPECT_FALSE(H->marked(Obj));
  H->setMarked(Obj, true);
  EXPECT_TRUE(H->marked(Obj));
  EXPECT_TRUE(H->isArray(Obj) == false); // Flags kept intact.
  H->setMarked(Obj, false);
  EXPECT_FALSE(H->marked(Obj));
}

TEST_F(VmTest, IsObjectStartWalksTheHeap) {
  Addr A = H->allocObject(*Cls);
  Addr Arr = H->allocArray(ir::Type::Ref, 3);
  EXPECT_TRUE(H->isObjectStart(A));
  EXPECT_TRUE(H->isObjectStart(Arr));
  EXPECT_FALSE(H->isObjectStart(A + 8));
}

} // namespace
