//===- tests/fault_test.cpp - Failure containment and chaos injection -----===//
//
// Coverage for the failure-containment layer: the seeded fault injector
// itself, graceful degradation of inspection/planning, the guarded-load
// fault path, and the harness's retry/quarantine/timeout machinery.
// The overarching invariant: no injected fault may change a simulated
// program's result or take the process down.
//
//===----------------------------------------------------------------------===//

#include "TestKernels.h"
#include "core/ObjectInspector.h"
#include "core/PrefetchPass.h"
#include "core/PrefetchPlanner.h"
#include "core/StrideAnalysis.h"
#include "harness/Experiment.h"
#include "sim/MemorySystem.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/Status.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

using namespace spf;
using namespace spf::core;
using namespace spf::support;
using namespace spf::testkernels;

namespace {

/// Saves and restores one environment variable around a test body.
struct ScopedEnv {
  std::string Name;
  bool HadOld;
  std::string Old;

  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    const char *O = std::getenv(Name);
    HadOld = O != nullptr;
    Old = O ? O : "";
    if (Value)
      setenv(Name, Value, 1);
    else
      unsetenv(Name);
  }
  ~ScopedEnv() {
    if (HadOld)
      setenv(Name.c_str(), Old.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

// -- Configuration parsing -------------------------------------------------

TEST(FaultConfigTest, ParsesSingleSite) {
  auto C = FaultConfig::parse("inspect-read:0.25:7");
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->anyEnabled());
  const auto &S = C->site(FaultSite::InspectHeapRead);
  EXPECT_TRUE(S.Enabled);
  EXPECT_DOUBLE_EQ(S.Rate, 0.25);
  EXPECT_EQ(S.Seed, 7u);
  EXPECT_FALSE(C->site(FaultSite::Alloc).Enabled);
  EXPECT_FALSE(C->site(FaultSite::GuardAddr).Enabled);
  EXPECT_FALSE(C->site(FaultSite::CellExec).Enabled);
}

TEST(FaultConfigTest, ParsesMultipleSites) {
  auto C = FaultConfig::parse("alloc:0.5:1,guard-addr:1:2,cell:0.125:3");
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->site(FaultSite::Alloc).Enabled);
  EXPECT_TRUE(C->site(FaultSite::GuardAddr).Enabled);
  EXPECT_DOUBLE_EQ(C->site(FaultSite::GuardAddr).Rate, 1.0);
  EXPECT_TRUE(C->site(FaultSite::CellExec).Enabled);
  EXPECT_FALSE(C->site(FaultSite::InspectHeapRead).Enabled);
}

TEST(FaultConfigTest, AllEnablesEverySiteWithDistinctStreams) {
  auto C = FaultConfig::parse("all:0.1:42");
  ASSERT_TRUE(C.has_value());
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    EXPECT_TRUE(C->Sites[I].Enabled) << "site " << I;
    EXPECT_DOUBLE_EQ(C->Sites[I].Rate, 0.1);
  }
  // Per-site seeds must differ, or every site would fire in lockstep.
  EXPECT_NE(C->site(FaultSite::InspectHeapRead).Seed,
            C->site(FaultSite::Alloc).Seed);
}

TEST(FaultConfigTest, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(FaultConfig::parse("bogus-site:0.5:1", &Err).has_value());
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(FaultConfig::parse("alloc:1.5:1").has_value()); // Rate > 1.
  EXPECT_FALSE(FaultConfig::parse("alloc:-0.1:1").has_value());
  EXPECT_FALSE(FaultConfig::parse("alloc:0.5").has_value()); // No seed.
  EXPECT_FALSE(FaultConfig::parse("").has_value());
  EXPECT_FALSE(FaultConfig::parse("alloc:zero:1").has_value());
}

TEST(FaultConfigTest, FromEnvUnsetDisablesEverything) {
  ScopedEnv E("SPF_FAULTS", nullptr);
  FaultConfig C = FaultConfig::fromEnv();
  EXPECT_FALSE(C.anyEnabled());
}

TEST(FaultConfigTest, ParsesCrashSite) {
  auto C = FaultConfig::parse("crash:0.5:9");
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->site(FaultSite::Crash).Enabled);
  EXPECT_DOUBLE_EQ(C->site(FaultSite::Crash).Rate, 0.5);
  EXPECT_FALSE(C->site(FaultSite::CellExec).Enabled);
}

TEST(FaultConfigTest, ParsesDiskSites) {
  auto C = FaultConfig::parse("disk-write:0.25:5,disk-sync:0.5:6");
  ASSERT_TRUE(C.has_value());
  EXPECT_TRUE(C->site(FaultSite::DiskWrite).Enabled);
  EXPECT_DOUBLE_EQ(C->site(FaultSite::DiskWrite).Rate, 0.25);
  EXPECT_TRUE(C->site(FaultSite::DiskSync).Enabled);
  EXPECT_DOUBLE_EQ(C->site(FaultSite::DiskSync).Rate, 0.5);
  EXPECT_FALSE(C->site(FaultSite::CellExec).Enabled);
  // Round trip through the canonical names.
  EXPECT_STREQ(faultSiteName(FaultSite::DiskWrite), "disk-write");
  EXPECT_STREQ(faultSiteName(FaultSite::DiskSync), "disk-sync");
  EXPECT_EQ(parseFaultSiteName("disk-write"), FaultSite::DiskWrite);
  EXPECT_EQ(parseFaultSiteName("disk-sync"), FaultSite::DiskSync);
}

TEST(FaultConfigTest, ExecutionSitePredicateExcludesDiskSites) {
  // Disk-only chaos must keep trace reuse on (it exists to exercise the
  // spill/journal writes), so the gate is "any *execution* site", not
  // "any site".
  auto DiskOnly = FaultConfig::parse("disk-write:0.5:1,disk-sync:0.5:2");
  ASSERT_TRUE(DiskOnly.has_value());
  EXPECT_TRUE(DiskOnly->anyEnabled());
  EXPECT_FALSE(DiskOnly->anyExecutionSiteEnabled());

  auto Mixed = FaultConfig::parse("disk-write:0.5:1,cell:0.1:2");
  ASSERT_TRUE(Mixed.has_value());
  EXPECT_TRUE(Mixed->anyExecutionSiteEnabled());

  // "all" arms every site, disk included — and counts as execution chaos.
  auto All = FaultConfig::parse("all:0.1:3");
  ASSERT_TRUE(All.has_value());
  EXPECT_TRUE(All->site(FaultSite::DiskWrite).Enabled);
  EXPECT_TRUE(All->site(FaultSite::DiskSync).Enabled);
  EXPECT_TRUE(All->anyExecutionSiteEnabled());

  // A rate-zero execution site is enabled but can never fire: not chaos.
  auto Zero = FaultConfig::parse("cell:0:4");
  ASSERT_TRUE(Zero.has_value());
  EXPECT_FALSE(Zero->anyExecutionSiteEnabled());
}

// -- Fail-fast environment parsing -----------------------------------------
//
// A malformed knob must kill the process immediately with a clear message
// and exit code 2 (support::ConfigErrorExit) — a typo'd SPF_FAULTS that
// silently disables chaos mode would make a chaos CI job pass vacuously.

TEST(EnvFailFastDeathTest, MalformedSpfFaultsExitsWithConfigError) {
  ScopedEnv E("SPF_FAULTS", "not a spec");
  EXPECT_EXIT(FaultConfig::fromEnv(),
              ::testing::ExitedWithCode(support::ConfigErrorExit),
              "invalid SPF_FAULTS");
}

TEST(EnvFailFastDeathTest, MalformedSpfTraceMbExitsWithConfigError) {
  ScopedEnv E("SPF_TRACE_MB", "lots");
  EXPECT_EXIT(support::envDouble("SPF_TRACE_MB", 256.0, 0.0),
              ::testing::ExitedWithCode(support::ConfigErrorExit),
              "invalid SPF_TRACE_MB");
}

TEST(EnvFailFastDeathTest, NegativeSpfCellTimeoutExitsWithConfigError) {
  ScopedEnv E("SPF_CELL_TIMEOUT", "-3");
  EXPECT_EXIT(support::envDouble("SPF_CELL_TIMEOUT", 0.0, 0.0),
              ::testing::ExitedWithCode(support::ConfigErrorExit),
              "invalid SPF_CELL_TIMEOUT");
}

TEST(EnvFailFastDeathTest, MalformedSpfCellMemMbExitsWithConfigError) {
  ScopedEnv E("SPF_CELL_MEM_MB", "-64");
  EXPECT_EXIT(support::envU64("SPF_CELL_MEM_MB", 0),
              ::testing::ExitedWithCode(support::ConfigErrorExit),
              "invalid SPF_CELL_MEM_MB");
}

TEST(EnvFailFastTest, WellFormedValuesParse) {
  {
    ScopedEnv E("SPF_CELL_TIMEOUT", "2.5");
    EXPECT_DOUBLE_EQ(support::envDouble("SPF_CELL_TIMEOUT", 0.0, 0.0), 2.5);
  }
  {
    ScopedEnv E("SPF_CELL_MEM_MB", "512");
    EXPECT_EQ(support::envU64("SPF_CELL_MEM_MB", 0), 512u);
  }
  {
    ScopedEnv E("SPF_CELL_MEM_MB", nullptr);
    EXPECT_EQ(support::envU64("SPF_CELL_MEM_MB", 7), 7u); // Unset: default.
  }
}

// -- Injector determinism --------------------------------------------------

TEST(FaultInjectorTest, SameConfigAndSaltYieldTheSameDecisions) {
  auto C = FaultConfig::parse("alloc:0.5:99");
  ASSERT_TRUE(C.has_value());
  FaultInjector A(*C, 17), B(*C, 17);
  for (unsigned I = 0; I != 1000; ++I)
    ASSERT_EQ(A.shouldFail(FaultSite::Alloc), B.shouldFail(FaultSite::Alloc))
        << "decision " << I;
  EXPECT_EQ(A.totalInjected(), B.totalInjected());
  EXPECT_GT(A.totalInjected(), 0u); // Rate 0.5 over 1000 draws fires.
}

TEST(FaultInjectorTest, DifferentSaltsYieldDifferentStreams) {
  auto C = FaultConfig::parse("alloc:0.5:99");
  ASSERT_TRUE(C.has_value());
  FaultInjector A(*C, 1), B(*C, 2);
  unsigned Differing = 0;
  for (unsigned I = 0; I != 1000; ++I)
    Differing += A.shouldFail(FaultSite::Alloc) !=
                 B.shouldFail(FaultSite::Alloc);
  EXPECT_GT(Differing, 0u); // Retries must re-roll, not replay.
}

TEST(FaultInjectorTest, RateExtremes) {
  auto C1 = FaultConfig::parse("cell:1:5");
  ASSERT_TRUE(C1.has_value());
  FaultInjector Always(*C1);
  for (unsigned I = 0; I != 100; ++I)
    ASSERT_TRUE(Always.shouldFail(FaultSite::CellExec));

  auto C0 = FaultConfig::parse("cell:0:5");
  ASSERT_TRUE(C0.has_value());
  FaultInjector Never(*C0);
  for (unsigned I = 0; I != 100; ++I)
    ASSERT_FALSE(Never.shouldFail(FaultSite::CellExec));
  EXPECT_EQ(Never.totalInjected(), 0u);
}

TEST(FaultScopeTest, ActivatesPerThreadAndNests) {
  EXPECT_EQ(FaultScope::current(), nullptr);
  EXPECT_FALSE(SPF_FAULT_POINT(FaultSite::Alloc)); // No scope: never fires.

  auto C = FaultConfig::parse("alloc:1:1");
  ASSERT_TRUE(C.has_value());
  FaultInjector Outer(*C), Inner(*C);
  {
    FaultScope S1(Outer);
    EXPECT_EQ(FaultScope::current(), &Outer);
    EXPECT_TRUE(SPF_FAULT_POINT(FaultSite::Alloc));
    {
      FaultScope S2(Inner);
      EXPECT_EQ(FaultScope::current(), &Inner);
      EXPECT_TRUE(SPF_FAULT_POINT(FaultSite::Alloc)); // Draws from Inner.
    }
    EXPECT_EQ(FaultScope::current(), &Outer); // Restored on unwind.
  }
  EXPECT_EQ(FaultScope::current(), nullptr);
  EXPECT_GT(Outer.totalInjected(), 0u);
  EXPECT_GT(Inner.totalInjected(), 0u);
}

// -- Graceful degradation of inspection ------------------------------------

/// With every inspection heap read faulted to `unknown`, the pass must
/// degrade to "no prefetch" — never crash, never emit a bogus plan.
TEST(DegradationTest, FaultedInspectionYieldsNoPrefetches) {
  JessWorld W(64, /*Scramble=*/true);
  auto C = FaultConfig::parse("inspect-read:1:3");
  ASSERT_TRUE(C.has_value());
  FaultInjector Injector(*C);
  FaultScope Scope(Injector);

  PrefetchPassOptions Opts;
  Opts.Planner.Mode = PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(W.Find, W.findArgs());

  EXPECT_GT(R.InspectionFaultsInjected, 0u);
  EXPECT_EQ(R.CodeGen.Prefetches, 0u);
  EXPECT_EQ(R.CodeGen.SpecLoads, 0u);
  EXPECT_GT(Injector.injectedCount(FaultSite::InspectHeapRead), 0u);
}

/// The same pass without faults emits code — the degradation above comes
/// from the injector, not from the kernel being unprefetchable.
TEST(DegradationTest, SameKernelPrefetchesWithoutFaults) {
  JessWorld W(64, /*Scramble=*/true);
  PrefetchPassOptions Opts;
  Opts.Planner.Mode = PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = 64;
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(W.Find, W.findArgs());
  EXPECT_EQ(R.InspectionFaultsInjected, 0u);
  EXPECT_GT(R.CodeGen.Prefetches + R.CodeGen.SpecLoads, 0u);
}

// -- StepBudget abort path -------------------------------------------------

/// An inspection cut off by the step budget must leave a *consistent*
/// partial trace (iterations in range and monotone per load), and the
/// stride/planning pipeline must still produce a structurally valid plan
/// from it.
TEST(StepBudgetTest, PartialTraceStaysConsistentAndPlannable) {
  for (uint64_t Budget : {40u, 200u, 800u}) {
    JessWorld W(64, /*Scramble=*/true);
    W.Find->recomputePreds();
    analysis::DominatorTree DT(W.Find);
    analysis::LoopInfo LI(W.Find, DT);
    analysis::DefUse DU(W.Find);
    analysis::Loop *Target = LI.topLevelLoops()[0];
    LoadDependenceGraph G(Target, LI);

    InspectorOptions Opts;
    Opts.StepBudget = Budget;
    ObjectInspector Insp(*W.Heap, LI, Opts);
    InspectionResult R = Insp.inspect(W.Find, W.findArgs(), Target, G);

    EXPECT_LE(R.StepsUsed, Budget + 1) << "budget " << Budget;
    EXPECT_FALSE(R.Degraded);
    for (const auto &[Load, Recs] : R.Trace) {
      unsigned Prev = 0;
      bool First = true;
      for (const AddrRecord &Rec : Recs) {
        EXPECT_LT(Rec.Iteration, Opts.MaxIterations);
        if (!First) {
          EXPECT_GT(Rec.Iteration, Prev) << "trace not monotone";
        }
        Prev = Rec.Iteration;
        First = false;
      }
    }

    // The pipeline downstream of the partial trace must stay sound.
    annotateStrides(G, R, StrideOptions());
    PlannerOptions POpts;
    POpts.Mode = PrefetchMode::InterIntra;
    POpts.LineBytes = 64;
    LoopPlan Plan = planPrefetches(G, DU, POpts);
    for (const AnchorPlan &A : Plan.Anchors) {
      EXPECT_NE(A.Anchor, nullptr);
      EXPECT_NE(A.Base, nullptr);
      for (const DerefPrefetch &D : A.Derefs)
        EXPECT_NE(D.ForLoad, nullptr);
    }
  }
}

// -- Guarded-load fault model ----------------------------------------------

TEST(GuardFaultTest, MemorySystemChargesTheFaultCostWithoutFills) {
  sim::MachineConfig Cfg = (*sim::MachineConfig::byName("pentium4"));
  sim::MemorySystem Mem(Cfg);
  uint64_t Before = Mem.cycles();
  sim::MemoryStats Stats0 = Mem.stats();

  Mem.guardedLoadFault();

  EXPECT_EQ(Mem.stats().GuardedLoadFaults, Stats0.GuardedLoadFaults + 1);
  EXPECT_EQ(Mem.cycles(), Before + Cfg.GuardFaultCost);
  // The recovery branch touches no memory: no loads, no misses, no
  // successful guarded loads, no prefetch traffic.
  EXPECT_EQ(Mem.stats().Loads, Stats0.Loads);
  EXPECT_EQ(Mem.stats().L1LoadMisses, Stats0.L1LoadMisses);
  EXPECT_EQ(Mem.stats().L2LoadMisses, Stats0.L2LoadMisses);
  EXPECT_EQ(Mem.stats().DtlbLoadMisses, Stats0.DtlbLoadMisses);
  EXPECT_EQ(Mem.stats().GuardedLoads, Stats0.GuardedLoads);
  EXPECT_EQ(Mem.stats().SwPrefetchesIssued, Stats0.SwPrefetchesIssued);
}

/// End to end: corrupting guarded-load addresses makes the software
/// exception check fire (GuardedLoadFaults > 0) while the program's
/// result stays bit-identical — the guard contains the bad address.
TEST(GuardFaultTest, CorruptedAddressesFailTheGuardNotTheProgram) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Opt;
  Opt.Machine = (*sim::MachineConfig::byName("pentium4"));
  Opt.Algo = workloads::Algorithm::InterIntra;
  Opt.Config.Scale = 0.05;

  workloads::RunResult Clean = workloads::runWorkload(*Spec, Opt);
  ASSERT_TRUE(Clean.SelfCheckOk);
  ASSERT_GT(Clean.Mem.GuardedLoads, 0u); // P4 INTER+INTRA uses guards.

  auto C = FaultConfig::parse("guard-addr:1:11");
  ASSERT_TRUE(C.has_value());
  FaultInjector Injector(*C);
  workloads::RunResult Chaos;
  {
    FaultScope Scope(Injector);
    Chaos = workloads::runWorkload(*Spec, Opt);
  }

  EXPECT_GT(Chaos.Mem.GuardedLoadFaults, 0u);
  EXPECT_EQ(Chaos.ReturnValue, Clean.ReturnValue); // Contained.
  EXPECT_TRUE(Chaos.SelfCheckOk);
  EXPECT_EQ(Chaos.Retired, Clean.Retired); // Same instruction stream.
}

// -- Harness: retry, quarantine, timeout -----------------------------------

harness::ExperimentPlan tinyJessPlan(unsigned Cells = 1) {
  harness::ExperimentPlan Plan;
  for (unsigned I = 0; I != Cells; ++I) {
    harness::ExperimentCell C;
    C.Group = "chaos";
    C.Spec = workloads::findWorkload("jess");
    C.Opt.Config.Scale = 0.05;
    Plan.add(std::move(C));
  }
  return Plan;
}

TEST(ChaosHarnessTest, CertainCellFaultsAreQuarantinedNotFailed) {
  ScopedEnv E("SPF_FAULTS", "cell:1:21");
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  harness::ExperimentPlan Plan = tinyJessPlan(2);
  harness::ExperimentResult R = harness::runPlan(Plan, 2);

  // Injected transients are the chaos harness working as intended:
  // quarantine, bounded retries, clean exit.
  EXPECT_TRUE(R.ok()) << (R.Failures.empty() ? "" : R.Failures[0]);
  ASSERT_EQ(R.Quarantine.size(), 2u);
  for (unsigned I = 0; I != 2; ++I) {
    EXPECT_FALSE(R.Cells[I].Ran);
    EXPECT_TRUE(R.Cells[I].Transient);
    EXPECT_EQ(R.Cells[I].Attempts, 3u); // MaxTransientAttempts.
    EXPECT_EQ(R.Quarantine[I].Kind, "faulted");
    EXPECT_EQ(R.Quarantine[I].CellIndex, I);
    EXPECT_EQ(R.Quarantine[I].Attempts, 3u);
  }

  // The JSON report reflects it: clean, but with a populated quarantine.
  std::ostringstream OS;
  harness::writeJsonReport(OS, Plan, R, 0.05, 2);
  std::string S = OS.str();
  EXPECT_NE(S.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(S.find("\"ran\":false"), std::string::npos);
  EXPECT_NE(S.find("\"kind\":\"faulted\""), std::string::npos);
  EXPECT_EQ(S.find("\"quarantine\":[]"), std::string::npos);
}

TEST(ChaosHarnessTest, TransientRetriesSucceedAndAreRecorded) {
  // Rate 0.5: across 8 cells x 3 attempts, some cells fail the first
  // attempt and then succeed (probabilistically certain with this seed —
  // the injector is deterministic, so no flakiness).
  ScopedEnv E("SPF_FAULTS", "cell:0.5:31");
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  harness::ExperimentPlan Plan = tinyJessPlan(8);
  harness::ExperimentResult R = harness::runPlan(Plan, 4);

  EXPECT_TRUE(R.ok());
  bool SawRetried = false, SawFirstTry = false;
  for (const harness::CellResult &Cell : R.Cells) {
    if (Cell.Ran && Cell.Attempts > 1)
      SawRetried = true;
    if (Cell.Ran && Cell.Attempts == 1)
      SawFirstTry = true;
  }
  EXPECT_TRUE(SawRetried);
  EXPECT_TRUE(SawFirstTry);
  for (const harness::QuarantineRecord &Q : R.Quarantine)
    if (Q.Kind == "retried") {
      EXPECT_GT(Q.Attempts, 1u);
    }
}

TEST(ChaosHarnessTest, ChaosRunsAreScheduleIndependent) {
  ScopedEnv E("SPF_FAULTS",
              "inspect-read:0.02:1,alloc:0.001:2,guard-addr:0.05:3,cell:0.4:4");
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  harness::ExperimentPlan Plan = tinyJessPlan(6);

  harness::ExperimentResult Serial = harness::runPlan(Plan, 1);
  harness::ExperimentResult Parallel = harness::runPlan(Plan, 4);

  ASSERT_EQ(Serial.Cells.size(), Parallel.Cells.size());
  for (unsigned I = 0; I != Plan.size(); ++I) {
    EXPECT_EQ(Serial.Cells[I].Ran, Parallel.Cells[I].Ran) << I;
    EXPECT_EQ(Serial.Cells[I].Attempts, Parallel.Cells[I].Attempts) << I;
    if (Serial.Cells[I].Ran && Parallel.Cells[I].Ran) {
      EXPECT_EQ(Serial.run(I).ReturnValue, Parallel.run(I).ReturnValue) << I;
      EXPECT_EQ(Serial.run(I).CompiledCycles, Parallel.run(I).CompiledCycles)
          << I;
      EXPECT_EQ(Serial.run(I).Retired, Parallel.run(I).Retired) << I;
      EXPECT_EQ(Serial.run(I).Mem.GuardedLoadFaults,
                Parallel.run(I).Mem.GuardedLoadFaults)
          << I;
    }
  }
  ASSERT_EQ(Serial.Quarantine.size(), Parallel.Quarantine.size());
  for (unsigned I = 0; I != Serial.Quarantine.size(); ++I) {
    EXPECT_EQ(Serial.Quarantine[I].Kind, Parallel.Quarantine[I].Kind);
    EXPECT_EQ(Serial.Quarantine[I].CellIndex,
              Parallel.Quarantine[I].CellIndex);
  }
  EXPECT_EQ(Serial.Failures, Parallel.Failures);
}

TEST(ChaosHarnessTest, TimeoutIsQuarantinedAndFailed) {
  ScopedEnv E("SPF_FAULTS", nullptr);
  ScopedEnv T("SPF_CELL_TIMEOUT", "0.000001"); // Expires immediately.
  harness::ExperimentPlan Plan = tinyJessPlan(1);
  harness::ExperimentResult R = harness::runPlan(Plan, 1);

  // A timeout is a real problem (unlike an injected transient): the cell
  // is quarantined AND the sweep fails.
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Quarantine.size(), 1u);
  EXPECT_EQ(R.Quarantine[0].Kind, "timeout");
  EXPECT_FALSE(R.Cells[0].Ran);
  EXPECT_TRUE(R.Cells[0].TimedOut);
  EXPECT_EQ(R.Cells[0].Attempts, 1u); // Timeouts are not retried.
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_NE(R.Failures[0].find("timed out"), std::string::npos);
}

TEST(ChaosHarnessTest, NoFaultsMeansNoQuarantineAndNoOverhead) {
  ScopedEnv E("SPF_FAULTS", nullptr);
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  harness::ExperimentPlan Plan = tinyJessPlan(1);
  harness::ExperimentResult R = harness::runPlan(Plan, 1);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Quarantine.empty());
  ASSERT_TRUE(R.Cells[0].Ran);
  EXPECT_EQ(R.Cells[0].Attempts, 1u);
}

// -- Chaos x trace layer ---------------------------------------------------

TEST(ChaosTraceTest, GuardedLoadFaultsSurviveRecordAndReplay) {
  // A guard-addr chaos run exercises the GuardedLoadFault opcode for
  // real: record such a run and verify the replay reproduces the faulted
  // stream's statistics bit for bit (faults included).
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Opt;
  Opt.Machine = (*sim::MachineConfig::byName("pentium4"));
  Opt.Algo = workloads::Algorithm::InterIntra;
  Opt.Config.Scale = 0.05;
  trace::TraceBuffer Buf;
  Opt.Record = &Buf;

  auto C = FaultConfig::parse("guard-addr:1:11");
  ASSERT_TRUE(C.has_value());
  FaultInjector Injector(*C);
  workloads::RunResult Direct;
  {
    FaultScope Scope(Injector);
    Direct = workloads::runWorkload(*Spec, Opt);
  }
  ASSERT_GT(Direct.Mem.GuardedLoadFaults, 0u); // The chaos really fired.
  ASSERT_FALSE(Buf.overflowed());

  workloads::RunResult Replayed =
      workloads::replayTrace(Direct, Buf, Opt.Machine);
  EXPECT_EQ(Replayed.Mem, Direct.Mem);
  EXPECT_EQ(Replayed.Sites, Direct.Sites);
  EXPECT_EQ(Replayed.CompiledCycles, Direct.CompiledCycles);
  EXPECT_EQ(Replayed.Mem.GuardedLoadFaults, Direct.Mem.GuardedLoadFaults);
}

TEST(ChaosTraceTest, FaultInjectionDisablesTraceReuse) {
  // With any fault site enabled, runPlan must not record or replay:
  // chaos exercises the real interpret path, and every cell re-rolls its
  // own fault stream. The results must match a run with reuse explicitly
  // off, and the cache must report itself disabled.
  ScopedEnv E("SPF_FAULTS", "guard-addr:0.05:3");
  ScopedEnv T("SPF_CELL_TIMEOUT", nullptr);
  harness::ExperimentPlan Plan = tinyJessPlan(4);

  harness::ExperimentResult WithTrace =
      harness::runPlan(Plan, 2, harness::TraceOptions());
  harness::TraceOptions Off;
  Off.Enabled = false;
  harness::ExperimentResult NoTrace = harness::runPlan(Plan, 2, Off);

  EXPECT_FALSE(WithTrace.TraceEnabled); // Auto-disabled by SPF_FAULTS.
  EXPECT_EQ(WithTrace.Trace.Hits + WithTrace.Trace.Misses, 0u);
  ASSERT_EQ(WithTrace.Cells.size(), NoTrace.Cells.size());
  for (unsigned I = 0; I != Plan.size(); ++I) {
    ASSERT_TRUE(WithTrace.Cells[I].Ran && NoTrace.Cells[I].Ran) << I;
    EXPECT_FALSE(WithTrace.run(I).Replayed) << I;
    EXPECT_EQ(WithTrace.run(I).Mem, NoTrace.run(I).Mem) << I;
    EXPECT_EQ(WithTrace.run(I).CompiledCycles, NoTrace.run(I).CompiledCycles)
        << I;
    EXPECT_EQ(WithTrace.run(I).Mem.GuardedLoadFaults,
              NoTrace.run(I).Mem.GuardedLoadFaults)
        << I;
  }
}

} // namespace
