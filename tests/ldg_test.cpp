//===- tests/ldg_test.cpp - Load dependence graph (Section 3.1) -----------===//

#include "TestKernels.h"
#include "core/LoadDependenceGraph.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;
using namespace spf::testkernels;

namespace {

struct JessAnalyses {
  JessWorld W;
  analysis::DominatorTree DT;
  analysis::LoopInfo LI;

  JessAnalyses() : DT((W.Find->recomputePreds(), W.Find)), LI(W.Find, DT) {}

  analysis::Loop *outer() {
    EXPECT_EQ(LI.topLevelLoops().size(), 1u);
    return LI.topLevelLoops()[0];
  }
  analysis::Loop *inner() {
    EXPECT_EQ(outer()->subLoops().size(), 1u);
    return outer()->subLoops()[0];
  }
};

TEST(LdgTest, OuterGraphContainsAllElevenTable1Loads) {
  JessAnalyses A;
  LoadDependenceGraph G(A.outer(), A.LI);
  EXPECT_EQ(G.nodes().size(), 11u);
  for (Instruction *L : {A.W.L1, A.W.L2, A.W.L3, A.W.L4, A.W.L5, A.W.L6,
                         A.W.L7, A.W.L8, A.W.L9, A.W.L10, A.W.L11})
    EXPECT_TRUE(G.nodeFor(L).has_value());
}

TEST(LdgTest, InnerGraphContainsOnlyInnerLoads) {
  JessAnalyses A;
  LoadDependenceGraph G(A.inner(), A.LI);
  EXPECT_EQ(G.nodes().size(), 6u); // L6..L11.
  EXPECT_FALSE(G.nodeFor(A.W.L4).has_value());
  EXPECT_TRUE(G.nodeFor(A.W.L9).has_value());
}

TEST(LdgTest, EdgesFollowDirectDataDependence) {
  // The Figure 5 graph: L2 -> {L3, L4}, L4 -> {L9}, L6 -> {L7, L8},
  // L9 -> {L10, L11}; L1, L5 are isolated roots.
  JessAnalyses A;
  LoadDependenceGraph G(A.outer(), A.LI);

  auto HasEdge = [&](Instruction *From, Instruction *To) {
    auto F = G.nodeFor(From);
    auto T = G.nodeFor(To);
    EXPECT_TRUE(F && T);
    return G.edgeBetween(*F, *T) != nullptr;
  };

  EXPECT_TRUE(HasEdge(A.W.L2, A.W.L3));
  EXPECT_TRUE(HasEdge(A.W.L2, A.W.L4));
  EXPECT_TRUE(HasEdge(A.W.L4, A.W.L9));
  EXPECT_TRUE(HasEdge(A.W.L6, A.W.L7));
  EXPECT_TRUE(HasEdge(A.W.L6, A.W.L8));
  EXPECT_TRUE(HasEdge(A.W.L9, A.W.L10));
  EXPECT_TRUE(HasEdge(A.W.L9, A.W.L11));

  EXPECT_FALSE(HasEdge(A.W.L2, A.W.L9)); // Only *direct* dependence.
  EXPECT_FALSE(HasEdge(A.W.L1, A.W.L2)); // Same base, no dependence.
  EXPECT_FALSE(HasEdge(A.W.L4, A.W.L8)); // L8's base is L6.

  EXPECT_TRUE(G.nodes()[*G.nodeFor(A.W.L1)].Succs.empty());
  EXPECT_TRUE(G.nodes()[*G.nodeFor(A.W.L1)].Preds.empty());
  EXPECT_EQ(G.nodes()[*G.nodeFor(A.W.L9)].Succs.size(), 2u);
  EXPECT_EQ(G.nodes()[*G.nodeFor(A.W.L9)].Preds.size(), 1u);
  EXPECT_EQ(G.edges().size(), 7u);
}

TEST(LdgTest, NodesRecordTheirHomeLoop) {
  JessAnalyses A;
  LoadDependenceGraph G(A.outer(), A.LI);
  EXPECT_EQ(G.nodes()[*G.nodeFor(A.W.L4)].Home, A.outer());
  EXPECT_EQ(G.nodes()[*G.nodeFor(A.W.L9)].Home, A.inner());
}

TEST(LdgTest, BaseOperandExtraction) {
  JessAnalyses A;
  EXPECT_EQ(LoadDependenceGraph::baseOperand(A.W.L4), A.W.L2);
  EXPECT_EQ(LoadDependenceGraph::baseOperand(A.W.L9), A.W.L4);
  EXPECT_EQ(LoadDependenceGraph::baseOperand(A.W.L1), A.W.Find->arg(0));
  EXPECT_EQ(LoadDependenceGraph::baseOperand(A.W.L3), A.W.L2);
}

TEST(LdgTest, ArgumentBasedLoadsAreRoots) {
  // Loads whose base is an argument (not another load) have no preds:
  // L1, L2, L5, L6 chase the parameters directly.
  JessAnalyses A;
  LoadDependenceGraph G(A.outer(), A.LI);
  for (Instruction *L : {A.W.L1, A.W.L2, A.W.L5, A.W.L6})
    EXPECT_TRUE(G.nodes()[*G.nodeFor(L)].Preds.empty());
}

} // namespace
