//===- tests/stream_test.cpp - Streaming aggregation bit-identity ---------===//
//
// The streaming contract (StreamOptions): admitting cells through a
// bounded window, retiring them in plan order, streaming each record to
// --cells-out, and folding the heavy per-cell payloads must leave the
// JSON report *bit-identical* to the unstreamed in-memory path — while
// holding peak resident cells at O(jobs) instead of O(plan).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Journal.h"
#include "harness/JsonReader.h"
#include "support/Shutdown.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace spf;
using namespace spf::harness;

namespace {

struct TempFile {
  std::string Path;
  explicit TempFile(const char *Name)
      : Path(std::string(::testing::TempDir()) + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

harness::ExperimentPlan mediumPlan(unsigned Cells) {
  harness::ExperimentPlan Plan;
  const char *Names[] = {"jess", "db", "mtrt"};
  for (unsigned I = 0; I != Cells; ++I) {
    harness::ExperimentCell C;
    C.Group = "stream-test";
    C.Spec = workloads::findWorkload(Names[I % 3]);
    C.Opt.Config.Scale = 0.05;
    C.Opt.Algo = I % 2 ? workloads::Algorithm::InterIntra
                       : workloads::Algorithm::Baseline;
    Plan.add(std::move(C));
  }
  return Plan;
}

/// Zeroes the wall-clock-only fields no two executions reproduce, so the
/// remaining report bytes are the deterministic simulation payload.
void zeroWallClock(harness::ExperimentResult &R) {
  for (CellResult &C : R.Cells) {
    C.Run.InterpretUs = 0;
    C.Run.ReplayUs = 0;
    C.Run.Replayed = false;
    C.Run.JitTotalUs = 0;
    C.Run.JitPrefetchUs = 0;
  }
}

/// The report without the trailing obs stats section (counters include
/// process-lifetime totals, so they legitimately differ between two
/// runPlan calls in one process).
std::string reportBody(const harness::ExperimentPlan &Plan,
                       const harness::ExperimentResult &R, unsigned Jobs) {
  std::ostringstream OS;
  writeJsonReport(OS, Plan, R, 0.05, Jobs);
  std::string S = OS.str();
  size_t Stats = S.find(",\"stats\":");
  return Stats == std::string::npos ? S : S.substr(0, Stats);
}

// -- Bit-identity ------------------------------------------------------------

TEST(StreamTest, StreamedReportIsBitIdenticalToInMemory) {
  support::resetShutdownForTests();
  TempFile Cells("stream_cells.jsonl");
  harness::ExperimentPlan Plan = mediumPlan(12);

  RunPlanOptions InMem;
  InMem.Trace.Enabled = false;
  harness::ExperimentResult A = harness::runPlan(Plan, 3, InMem);
  ASSERT_TRUE(A.ok());

  RunPlanOptions Streamed = InMem;
  Streamed.Stream.Enabled = true;
  Streamed.Stream.CellsOutPath = Cells.Path;
  harness::ExperimentResult B = harness::runPlan(Plan, 3, Streamed);
  ASSERT_TRUE(B.ok());

  zeroWallClock(A);
  zeroWallClock(B);
  EXPECT_EQ(reportBody(Plan, A, 3), reportBody(Plan, B, 3));
}

TEST(StreamTest, FoldOnlyModeNeedsNoSink) {
  // Stream.Enabled with no CellsOutPath: folding still happens, no file
  // is written, the report is still identical.
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = mediumPlan(6);

  RunPlanOptions InMem;
  InMem.Trace.Enabled = false;
  harness::ExperimentResult A = harness::runPlan(Plan, 2, InMem);

  RunPlanOptions FoldOnly = InMem;
  FoldOnly.Stream.Enabled = true;
  harness::ExperimentResult B = harness::runPlan(Plan, 2, FoldOnly);
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(B.CellsStreamed, 0u); // No sink: nothing written.

  zeroWallClock(A);
  zeroWallClock(B);
  EXPECT_EQ(reportBody(Plan, A, 2), reportBody(Plan, B, 2));
}

// -- The cells-out stream itself ---------------------------------------------

TEST(StreamTest, CellsOutStreamIsCompleteAndParseable) {
  support::resetShutdownForTests();
  TempFile Cells("stream_parse.jsonl");
  harness::ExperimentPlan Plan = mediumPlan(8);

  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Stream.Enabled = true;
  Opts.Stream.CellsOutPath = Cells.Path;
  harness::ExperimentResult R = harness::runPlan(Plan, 2, Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.CellsStreamed, 8u);

  std::ifstream IS(Cells.Path);
  ASSERT_TRUE(IS.good());
  std::string Line;

  // Header: schema, the plan hash (same one the journal uses), count.
  ASSERT_TRUE(std::getline(IS, Line));
  auto Header = JsonValue::parse(Line, nullptr);
  ASSERT_NE(Header, nullptr) << Line;
  EXPECT_EQ(Header->getString("cells_out"), "spf-cells-v1");
  char Hash[24];
  std::snprintf(Hash, sizeof(Hash), "%016llx",
                static_cast<unsigned long long>(journalPlanHash(Plan)));
  EXPECT_EQ(Header->getString("plan_hash"), Hash);
  EXPECT_EQ(Header->getU64("cells"), 8u);

  // One record line per cell, in plan order, each a valid cell record
  // that matches the in-memory result bit for bit.
  for (unsigned I = 0; I != 8; ++I) {
    ASSERT_TRUE(std::getline(IS, Line)) << "cell " << I;
    auto V = JsonValue::parse(Line, nullptr);
    ASSERT_NE(V, nullptr) << Line;
    EXPECT_EQ(V->getU64("cell"), I);
    CellResult Back;
    ASSERT_TRUE(parseCellRecord(V->get("record"), Back)) << I;
    EXPECT_EQ(Back.Run.ReturnValue, R.run(I).ReturnValue) << I;
    EXPECT_EQ(Back.Run.Retired, R.run(I).Retired) << I;
    // The streamed record carries the *full* site table — folding
    // happens after the record is written, never before.
    EXPECT_EQ(Back.Run.Sites.size(), R.Cells[I].FoldedSiteCount) << I;
  }
  EXPECT_FALSE(std::getline(IS, Line)); // Nothing after the last cell.
}

// -- O(jobs) residency -------------------------------------------------------

TEST(StreamTest, PeakResidencyIsBoundedByTheWindowNotThePlan) {
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = mediumPlan(24);

  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Stream.Enabled = true;
  const unsigned Jobs = 2;
  harness::ExperimentResult R = harness::runPlan(Plan, Jobs, Opts);
  ASSERT_TRUE(R.ok());

  // The admission window is max(2*jobs, 4); resident cells can never
  // exceed it. Without streaming the whole plan is resident.
  EXPECT_LE(R.PeakResidentCells, std::max(2 * Jobs, 4u));
  EXPECT_GT(R.PeakResidentCells, 0u);

  harness::ExperimentResult Whole =
      harness::runPlan(Plan, Jobs, RunPlanOptions{});
  EXPECT_EQ(Whole.PeakResidentCells, Plan.size());

  // Folding really freed the heavy payloads.
  for (const CellResult &C : R.Cells) {
    EXPECT_TRUE(C.SitesFolded);
    EXPECT_TRUE(C.Run.Sites.empty());
    EXPECT_TRUE(C.Run.Decisions.empty());
    EXPECT_FALSE(C.FoldedSiteHash.empty());
  }
}

// -- Streaming composes with the journal and the governor --------------------

TEST(StreamTest, StreamingComposesWithJournalResume) {
  support::resetShutdownForTests();
  TempFile J("stream_journal.jsonl");
  TempFile Cells("stream_resume_cells.jsonl");
  harness::ExperimentPlan Plan = mediumPlan(6);

  RunPlanOptions First;
  First.Trace.Enabled = false;
  First.Journal.Path = J.Path;
  First.Stream.Enabled = true;
  harness::ExperimentResult A = harness::runPlan(Plan, 2, First);
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(A.JournalAppended, 6u);

  // Resume with streaming + a sink: grafted cells still stream and fold.
  RunPlanOptions Second = First;
  Second.Journal.Resume = true;
  Second.Stream.CellsOutPath = Cells.Path;
  harness::ExperimentResult B = harness::runPlan(Plan, 2, Second);
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(B.JournalGrafted, 6u);
  EXPECT_EQ(B.CellsStreamed, 6u);
  for (const CellResult &C : B.Cells)
    EXPECT_TRUE(C.SitesFolded);
}

TEST(StreamTest, UnopenableSinkIsAFailureNotACrash) {
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = mediumPlan(2);
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Stream.Enabled = true;
  Opts.Stream.CellsOutPath = "/nonexistent-dir/cells.jsonl";
  harness::ExperimentResult R = harness::runPlan(Plan, 1, Opts);
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_NE(R.Failures[0].find("cells-out"), std::string::npos)
      << R.Failures[0];
}

} // namespace
