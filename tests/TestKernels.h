//===- tests/TestKernels.h - Shared fixtures for core tests -----*- C++ -*-===//
///
/// \file
/// A miniature jess-like world (Figure 1 shape) used by the load-
/// dependence-graph, object-inspection, planner, and pass tests.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_TESTS_TESTKERNELS_H
#define SPF_TESTS_TESTKERNELS_H

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "vm/Heap.h"

#include <gtest/gtest.h>

namespace spf {
namespace testkernels {

/// The Figure 1 world: TokenVector { Token[] v; int ptr; },
/// Token { VV[] facts; int size; }, VV { int val; } — with tokens whose
/// facts arrays are constructor-adjacent and whose array order is
/// scrambled.
struct JessWorld {
  vm::TypeTable Types;
  const vm::ClassDesc *TokenVector = nullptr;
  const vm::FieldDesc *TvV = nullptr;
  const vm::FieldDesc *TvPtr = nullptr;
  const vm::ClassDesc *Token = nullptr;
  const vm::FieldDesc *TokFacts = nullptr;
  const vm::FieldDesc *TokSize = nullptr;
  const vm::ClassDesc *VV = nullptr;
  const vm::FieldDesc *VvVal = nullptr;

  std::unique_ptr<vm::Heap> Heap;
  vm::Addr Tv = 0;
  vm::Addr QueryToken = 0;
  unsigned NumTokens = 0;
  unsigned FactsPerToken = 5;

  ir::Module M;
  ir::Method *Find = nullptr;   // The Figure 1 method.
  ir::Method *Equals = nullptr; // The invoked comparison.

  // The Table 1 loads (L3/L7/L10 are the bound-check arraylengths).
  ir::Instruction *L1 = nullptr, *L2 = nullptr, *L3 = nullptr,
                  *L4 = nullptr, *L5 = nullptr, *L6 = nullptr,
                  *L7 = nullptr, *L8 = nullptr, *L9 = nullptr,
                  *L10 = nullptr, *L11 = nullptr;

  explicit JessWorld(unsigned NTokens = 64, bool Scramble = true) {
    NumTokens = NTokens;
    auto *TvC = Types.addClass("TokenVector");
    TvV = Types.addField(TvC, "v", ir::Type::Ref);
    TvPtr = Types.addField(TvC, "ptr", ir::Type::I32);
    TokenVector = TvC;
    auto *TokC = Types.addClass("Token");
    TokFacts = Types.addField(TokC, "facts", ir::Type::Ref);
    TokSize = Types.addField(TokC, "size", ir::Type::I32);
    Token = TokC;
    auto *VvC = Types.addClass("ValueVector");
    VvVal = Types.addField(VvC, "val", ir::Type::I32);
    VV = VvC;

    vm::HeapConfig HC;
    HC.HeapBytes = 4 << 20;
    Heap = std::make_unique<vm::Heap>(Types, HC);

    buildHeap(Scramble);
    buildMethods();
  }

  vm::Addr allocToken(int32_t Base) {
    vm::Addr Tok = Heap->allocObject(*Token);
    vm::Addr Facts = Heap->allocArray(ir::Type::Ref, FactsPerToken);
    Heap->store(Tok + TokFacts->Offset, ir::Type::Ref, Facts);
    Heap->store(Tok + TokSize->Offset, ir::Type::I32, FactsPerToken);
    for (unsigned J = 0; J != FactsPerToken; ++J) {
      vm::Addr Fact = Heap->allocObject(*VV);
      Heap->store(Fact + VvVal->Offset, ir::Type::I32, Base + J);
      Heap->store(Heap->elemAddr(Facts, J), ir::Type::Ref, Fact);
    }
    return Tok;
  }

  void buildHeap(bool Scramble) {
    Tv = Heap->allocObject(*TokenVector);
    vm::Addr V = Heap->allocArray(ir::Type::Ref, NumTokens);
    Heap->store(Tv + TvV->Offset, ir::Type::Ref, V);
    Heap->store(Tv + TvPtr->Offset, ir::Type::I32, NumTokens);
    for (unsigned I = 0; I != NumTokens; ++I)
      Heap->store(Heap->elemAddr(V, I), ir::Type::Ref, allocToken(I * 10));
    if (Scramble) {
      // Deterministic scramble: swap i with (i*7+3) % n.
      for (unsigned I = 0; I != NumTokens; ++I) {
        unsigned J = (I * 7 + 3) % NumTokens;
        uint64_t A = Heap->load(Heap->elemAddr(V, I), ir::Type::Ref);
        uint64_t B2 = Heap->load(Heap->elemAddr(V, J), ir::Type::Ref);
        Heap->store(Heap->elemAddr(V, I), ir::Type::Ref, B2);
        Heap->store(Heap->elemAddr(V, J), ir::Type::Ref, A);
      }
    }
    QueryToken = allocToken(5);
  }

  void buildMethods() {
    using namespace ir;
    IRBuilder B(M);

    Equals = M.addMethod("equals", Type::I32, {Type::Ref, Type::Ref});
    B.setInsertPoint(Equals->addBlock("entry"));
    B.ret(B.cmpEq(B.getField(Equals->arg(0), VvVal),
                  B.getField(Equals->arg(1), VvVal)));

    Find = M.addMethod("findInMemory", Type::Ref, {Type::Ref, Type::Ref});
    BasicBlock *Entry = Find->addBlock("entry");
    BasicBlock *OH = Find->addBlock("outer.header");
    BasicBlock *OB = Find->addBlock("outer.body");
    BasicBlock *IH = Find->addBlock("inner.header");
    BasicBlock *IB = Find->addBlock("inner.body");
    BasicBlock *IL = Find->addBlock("inner.latch");
    BasicBlock *Found = Find->addBlock("found");
    BasicBlock *OL = Find->addBlock("outer.latch");
    BasicBlock *NotFound = Find->addBlock("notfound");

    Value *TvA = Find->arg(0);
    Value *TkA = Find->arg(1);

    B.setInsertPoint(Entry);
    B.jump(OH);
    B.setInsertPoint(OH);
    PhiInst *I = B.phi(Type::I32);
    L1 = cast<Instruction>(B.getField(TvA, TvPtr));
    B.br(B.cmpLt(I, L1), OB, NotFound);

    B.setInsertPoint(OB);
    L2 = cast<Instruction>(B.getField(TvA, TvV));
    L3 = cast<Instruction>(B.arrayLength(L2));
    L4 = cast<Instruction>(B.aload(L2, I, Type::Ref));
    L5 = cast<Instruction>(B.getField(TkA, TokSize));
    B.jump(IH);

    B.setInsertPoint(IH);
    PhiInst *J = B.phi(Type::I32);
    B.br(B.cmpLt(J, L5), IB, Found);

    B.setInsertPoint(IB);
    L6 = cast<Instruction>(B.getField(TkA, TokFacts));
    L7 = cast<Instruction>(B.arrayLength(L6));
    L8 = cast<Instruction>(B.aload(L6, J, Type::Ref));
    L9 = cast<Instruction>(B.getField(L4, TokFacts));
    L10 = cast<Instruction>(B.arrayLength(L9));
    L11 = cast<Instruction>(B.aload(L9, J, Type::Ref));
    Value *Eq = B.call(Equals, Type::I32, {L8, L11}, /*IsVirtual=*/true);
    B.br(Eq, IL, OL);

    B.setInsertPoint(IL);
    Value *J1 = B.add(J, B.i32(1));
    B.jump(IH);

    B.setInsertPoint(Found);
    B.ret(L4);

    B.setInsertPoint(OL);
    Value *I1 = B.add(I, B.i32(1));
    B.jump(OH);

    B.setInsertPoint(NotFound);
    B.ret(M.nullRef());

    Find->recomputePreds();
    I->addIncoming(Entry, M.intConst(Type::I32, 0));
    I->addIncoming(OL, I1);
    J->addIncoming(OB, M.intConst(Type::I32, 0));
    J->addIncoming(IL, J1);

    EXPECT_TRUE(ir::verifyMethod(Find));
  }

  std::vector<uint64_t> findArgs() const { return {Tv, QueryToken}; }

  /// Token pitch in bytes: Token(32) + facts array + fact objects.
  int64_t tokenPitch() const {
    return 32 + static_cast<int64_t>((16 + FactsPerToken * 8 + 7) / 8 * 8) +
           static_cast<int64_t>(FactsPerToken) * 24;
  }
};

} // namespace testkernels
} // namespace spf

#endif // SPF_TESTS_TESTKERNELS_H
