//===- tests/opt_test.cpp - Baseline pipeline optimizations ---------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/ConstantFolding.h"
#include "opt/DeadCodeElim.h"
#include "opt/Governor.h"
#include "opt/LocalCSE.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::ir;

namespace {

unsigned countInstructions(Method *M) {
  unsigned N = 0;
  for (const auto &BB : M->blocks())
    N += BB->size();
  return N;
}

class OptTest : public ::testing::Test {
protected:
  vm::TypeTable Types;
  Module M;
};

TEST_F(OptTest, FoldsConstantChains) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.add(B.i32(2), B.i32(3));   // 5
  Value *C = B.mul(A, B.i32(4));          // 20, after A folds
  Value *D = B.add(Fn->arg(0), C);        // Not foldable.
  B.ret(D);

  unsigned Folded = opt::foldConstants(Fn);
  EXPECT_EQ(Folded, 2u);
  EXPECT_TRUE(verifyMethod(Fn));
  // Only the add with the argument and the ret remain.
  EXPECT_EQ(countInstructions(Fn), 2u);
  auto *Add = cast<BinaryInst>(Fn->entry()->front());
  auto *K = dyn_cast<Constant>(Add->rhs());
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), 20);
}

TEST_F(OptTest, FoldingRespectsI32Wraparound) {
  Method *Fn = M.addMethod("f", Type::I32, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.add(B.i32(0x7fffffff), B.i32(1));
  B.ret(A);
  opt::foldConstants(Fn);
  auto *K = dyn_cast<Constant>(cast<RetInst>(Fn->entry()->back())->value());
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), -2147483648LL);
}

TEST_F(OptTest, DivisionByZeroIsNotFolded) {
  Method *Fn = M.addMethod("f", Type::I32, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.div(B.i32(10), B.i32(0));
  B.ret(A);
  EXPECT_EQ(opt::foldConstants(Fn), 0u);
}

TEST_F(OptTest, FoldsComparisons) {
  Method *Fn = M.addMethod("f", Type::I32, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(B.cmpLt(B.i32(3), B.i32(7)));
  opt::foldConstants(Fn);
  auto *K = dyn_cast<Constant>(cast<RetInst>(Fn->entry()->back())->value());
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), 1);
}

TEST_F(OptTest, CseMergesIdenticalExpressions) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A1 = B.add(Fn->arg(0), Fn->arg(1));
  Value *A2 = B.add(Fn->arg(0), Fn->arg(1)); // Duplicate.
  Value *A3 = B.add(Fn->arg(1), Fn->arg(0)); // Different operand order.
  B.ret(B.mul(B.mul(A1, A2), A3));

  EXPECT_EQ(opt::localCSE(Fn), 1u);
  EXPECT_TRUE(verifyMethod(Fn));
}

TEST_F(OptTest, CseMergesArrayLengthButNotGetField) {
  auto *Cls = Types.addClass("C");
  const vm::FieldDesc *F = Types.addField(Cls, "f", Type::I32);

  Method *Fn = M.addMethod("f", Type::I32, {Type::Ref});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *L1 = B.arrayLength(Fn->arg(0));
  Value *L2 = B.arrayLength(Fn->arg(0)); // Lengths are immutable: merge.
  Value *G1 = B.getField(Fn->arg(0), F);
  Value *G2 = B.getField(Fn->arg(0), F); // Mutable memory: keep both.
  B.ret(B.add(B.add(L1, L2), B.add(G1, G2)));

  EXPECT_EQ(opt::localCSE(Fn), 1u);
}

TEST_F(OptTest, CseIsBlockLocal) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *Next = Fn->addBlock("next");
  B.setInsertPoint(Entry);
  Value *A1 = B.add(Fn->arg(0), B.i32(5));
  B.jump(Next);
  B.setInsertPoint(Next);
  Value *A2 = B.add(Fn->arg(0), B.i32(5)); // Same expr, other block.
  B.ret(B.mul(A1, A2));
  EXPECT_EQ(opt::localCSE(Fn), 0u);
}

TEST_F(OptTest, DceRemovesUnusedPureChains) {
  auto *Cls = Types.addClass("C");
  const vm::FieldDesc *F = Types.addField(Cls, "f", Type::I32);

  Method *Fn = M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *Dead1 = B.add(Fn->arg(1), B.i32(1));
  B.mul(Dead1, Dead1);                  // Dead, and keeps Dead1 alive
                                        // until the first round.
  B.getField(Fn->arg(0), F);            // Dead load: removable.
  B.putField(Fn->arg(0), F, Fn->arg(1)); // Side effect: must stay.
  B.ret(Fn->arg(1));

  unsigned Removed = opt::eliminateDeadCode(Fn);
  EXPECT_EQ(Removed, 3u);
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(countInstructions(Fn), 2u); // putfield + ret.
}

TEST_F(OptTest, DceKeepsLoopCarriedPhis) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *H = Fn->addBlock("h");
  BasicBlock *Body = Fn->addBlock("body");
  BasicBlock *Exit = Fn->addBlock("exit");
  B.setInsertPoint(Entry);
  B.jump(H);
  B.setInsertPoint(H);
  PhiInst *I = B.phi(Type::I32);
  B.br(B.cmpLt(I, Fn->arg(0)), Body, Exit);
  B.setInsertPoint(Body);
  Value *I1 = B.add(I, B.i32(1));
  B.jump(H);
  B.setInsertPoint(Exit);
  B.ret(I);
  Fn->recomputePreds();
  I->addIncoming(Entry, M.intConst(Type::I32, 0));
  I->addIncoming(Body, I1);

  EXPECT_EQ(opt::eliminateDeadCode(Fn), 0u);
  EXPECT_TRUE(verifyMethod(Fn));
}

TEST_F(OptTest, PipelineCombinationReachesFixpoint) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  // (x + (2*8)) computed twice, second unused after CSE.
  Value *K = B.mul(B.i32(2), B.i32(8));
  Value *A1 = B.add(Fn->arg(0), K);
  Value *A2 = B.add(Fn->arg(0), K);
  (void)A2;
  B.ret(A1);

  opt::foldConstants(Fn);
  opt::localCSE(Fn);
  opt::eliminateDeadCode(Fn);
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(countInstructions(Fn), 2u); // add + ret.
}

// -- Prefetch-health governor ------------------------------------------------

/// Builds one cumulative site table entry from issue/fate counts.
sim::SiteStats health(uint64_t Issued, uint64_t Useful, uint64_t Late,
                      uint64_t Unused) {
  sim::SiteStats S;
  S.SwIssued = Issued;
  S.SwUseful = Useful;
  S.SwLate = Late;
  S.SwUnused = Unused;
  return S;
}

TEST(GovernorTest, HealthySitesAreKept) {
  opt::Governor Gov;
  // 64 resolved, 60 useful: comfortably above the accuracy floor.
  std::vector<sim::SiteStats> T = {health(64, 60, 2, 2)};
  EXPECT_TRUE(Gov.endEpoch(T).empty());
  EXPECT_EQ(Gov.quarantinedSites(), 0u);
}

TEST(GovernorTest, ThinEvidenceNeverTriggersADecision) {
  opt::Governor Gov; // MinResolved = 32.
  // 100% useless, but only 8 resolved fills: keep (no evidence).
  std::vector<sim::SiteStats> T = {health(8, 0, 0, 8)};
  EXPECT_TRUE(Gov.endEpoch(T).empty());
}

TEST(GovernorTest, InaccurateSiteIsQuarantined) {
  opt::Governor Gov;
  std::vector<sim::SiteStats> T = {health(64, 4, 4, 56)};
  std::vector<opt::GovernorDecision> D = Gov.endEpoch(T);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Quarantine);
  EXPECT_EQ(D[0].Site, 0u);
  EXPECT_EQ(D[0].Resolved, 64u);
  EXPECT_NEAR(D[0].Accuracy, 4.0 / 64.0, 1e-9);
  EXPECT_EQ(Gov.quarantinedSites(), 1u);

  // Quarantined sites are left alone afterwards, whatever their stats.
  std::vector<sim::SiteStats> T2 = {health(128, 8, 8, 112)};
  EXPECT_TRUE(Gov.endEpoch(T2).empty());
}

TEST(GovernorTest, LateSiteIsRetunedThenEventuallyQuarantined) {
  opt::Governor Gov; // RetuneStep = 2, MaxRetunes = 2.
  // Inaccurate by the floor but mostly *late*: stride right, distance
  // short. Epoch evidence is the delta, so keep the table cumulative.
  std::vector<sim::SiteStats> T = {health(64, 10, 50, 4)};
  std::vector<opt::GovernorDecision> D = Gov.endEpoch(T);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Retune);
  EXPECT_EQ(D[0].ExtraDistance, 2);

  T[0].SwIssued += 64;
  T[0].SwUseful += 10;
  T[0].SwLate += 50;
  T[0].SwUnused += 4;
  D = Gov.endEpoch(T);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Retune);
  EXPECT_EQ(D[0].ExtraDistance, 4); // Cumulative lookahead.
  EXPECT_EQ(Gov.retunesApplied(), 2u);

  // Third bad epoch: retune budget spent, fall through to quarantine.
  T[0].SwIssued += 64;
  T[0].SwUseful += 10;
  T[0].SwLate += 50;
  T[0].SwUnused += 4;
  D = Gov.endEpoch(T);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Quarantine);
  EXPECT_EQ(Gov.quarantinedSites(), 1u);
}

TEST(GovernorTest, QuarantineQuorumEscalatesToReinspectOnce) {
  opt::Governor Gov; // ReinspectQuorum = 2, MaxReinspects = 1.
  std::vector<sim::SiteStats> T = {health(64, 2, 2, 60),
                                   health(64, 3, 1, 60)};
  std::vector<opt::GovernorDecision> D = Gov.endEpoch(T);
  ASSERT_EQ(D.size(), 3u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Quarantine);
  EXPECT_EQ(D[1].Action, opt::GovernorAction::Quarantine);
  EXPECT_EQ(D.back().Action, opt::GovernorAction::Reinspect);
  EXPECT_EQ(D.back().Resolved, 2u); // Fresh quarantines behind it.

  // The caller re-inspected: all prior decisions are void and the health
  // baseline restarts at the current cumulative counters.
  Gov.noteReinspected(T);
  EXPECT_EQ(Gov.quarantinedSites(), 0u);
  EXPECT_EQ(Gov.reinspections(), 1u);
  EXPECT_TRUE(Gov.endEpoch(T).empty()); // Zero fresh evidence: keeps.

  // A second quorum cannot escalate again (budget spent): plain
  // quarantines only.
  std::vector<sim::SiteStats> T2 = {health(128, 4, 4, 120),
                                    health(128, 6, 2, 120)};
  D = Gov.endEpoch(T2);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(D[0].Action, opt::GovernorAction::Quarantine);
  EXPECT_EQ(D[1].Action, opt::GovernorAction::Quarantine);
}

TEST(GovernorTest, RptHealthIsObservedButNotGoverned) {
  // Hardware-RPT fills are attributed per site for the reports, but the
  // governor can only act on *software* prefetch code (suppress/retune a
  // prefetch instruction); it must not quarantine a site on RPT evidence
  // alone — there is nothing to patch.
  opt::Governor Gov;
  sim::SiteStats S;
  S.RptIssued = 64;
  S.RptUseful = 2;
  S.RptUnused = 62;
  std::vector<sim::SiteStats> T = {S};
  EXPECT_TRUE(Gov.endEpoch(T).empty());
}

TEST(GovernorTest, ActionNamesAreStable) {
  EXPECT_STREQ(opt::governorActionName(opt::GovernorAction::Keep), "keep");
  EXPECT_STREQ(opt::governorActionName(opt::GovernorAction::Retune),
               "retune");
  EXPECT_STREQ(opt::governorActionName(opt::GovernorAction::Quarantine),
               "quarantine");
  EXPECT_STREQ(opt::governorActionName(opt::GovernorAction::Reinspect),
               "reinspect");
}

} // namespace
