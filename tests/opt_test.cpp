//===- tests/opt_test.cpp - Baseline pipeline optimizations ---------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/ConstantFolding.h"
#include "opt/DeadCodeElim.h"
#include "opt/LocalCSE.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::ir;

namespace {

unsigned countInstructions(Method *M) {
  unsigned N = 0;
  for (const auto &BB : M->blocks())
    N += BB->size();
  return N;
}

class OptTest : public ::testing::Test {
protected:
  vm::TypeTable Types;
  Module M;
};

TEST_F(OptTest, FoldsConstantChains) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.add(B.i32(2), B.i32(3));   // 5
  Value *C = B.mul(A, B.i32(4));          // 20, after A folds
  Value *D = B.add(Fn->arg(0), C);        // Not foldable.
  B.ret(D);

  unsigned Folded = opt::foldConstants(Fn);
  EXPECT_EQ(Folded, 2u);
  EXPECT_TRUE(verifyMethod(Fn));
  // Only the add with the argument and the ret remain.
  EXPECT_EQ(countInstructions(Fn), 2u);
  auto *Add = cast<BinaryInst>(Fn->entry()->front());
  auto *K = dyn_cast<Constant>(Add->rhs());
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), 20);
}

TEST_F(OptTest, FoldingRespectsI32Wraparound) {
  Method *Fn = M.addMethod("f", Type::I32, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.add(B.i32(0x7fffffff), B.i32(1));
  B.ret(A);
  opt::foldConstants(Fn);
  auto *K = dyn_cast<Constant>(cast<RetInst>(Fn->entry()->back())->value());
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), -2147483648LL);
}

TEST_F(OptTest, DivisionByZeroIsNotFolded) {
  Method *Fn = M.addMethod("f", Type::I32, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.div(B.i32(10), B.i32(0));
  B.ret(A);
  EXPECT_EQ(opt::foldConstants(Fn), 0u);
}

TEST_F(OptTest, FoldsComparisons) {
  Method *Fn = M.addMethod("f", Type::I32, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(B.cmpLt(B.i32(3), B.i32(7)));
  opt::foldConstants(Fn);
  auto *K = dyn_cast<Constant>(cast<RetInst>(Fn->entry()->back())->value());
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), 1);
}

TEST_F(OptTest, CseMergesIdenticalExpressions) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A1 = B.add(Fn->arg(0), Fn->arg(1));
  Value *A2 = B.add(Fn->arg(0), Fn->arg(1)); // Duplicate.
  Value *A3 = B.add(Fn->arg(1), Fn->arg(0)); // Different operand order.
  B.ret(B.mul(B.mul(A1, A2), A3));

  EXPECT_EQ(opt::localCSE(Fn), 1u);
  EXPECT_TRUE(verifyMethod(Fn));
}

TEST_F(OptTest, CseMergesArrayLengthButNotGetField) {
  auto *Cls = Types.addClass("C");
  const vm::FieldDesc *F = Types.addField(Cls, "f", Type::I32);

  Method *Fn = M.addMethod("f", Type::I32, {Type::Ref});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *L1 = B.arrayLength(Fn->arg(0));
  Value *L2 = B.arrayLength(Fn->arg(0)); // Lengths are immutable: merge.
  Value *G1 = B.getField(Fn->arg(0), F);
  Value *G2 = B.getField(Fn->arg(0), F); // Mutable memory: keep both.
  B.ret(B.add(B.add(L1, L2), B.add(G1, G2)));

  EXPECT_EQ(opt::localCSE(Fn), 1u);
}

TEST_F(OptTest, CseIsBlockLocal) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *Next = Fn->addBlock("next");
  B.setInsertPoint(Entry);
  Value *A1 = B.add(Fn->arg(0), B.i32(5));
  B.jump(Next);
  B.setInsertPoint(Next);
  Value *A2 = B.add(Fn->arg(0), B.i32(5)); // Same expr, other block.
  B.ret(B.mul(A1, A2));
  EXPECT_EQ(opt::localCSE(Fn), 0u);
}

TEST_F(OptTest, DceRemovesUnusedPureChains) {
  auto *Cls = Types.addClass("C");
  const vm::FieldDesc *F = Types.addField(Cls, "f", Type::I32);

  Method *Fn = M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *Dead1 = B.add(Fn->arg(1), B.i32(1));
  B.mul(Dead1, Dead1);                  // Dead, and keeps Dead1 alive
                                        // until the first round.
  B.getField(Fn->arg(0), F);            // Dead load: removable.
  B.putField(Fn->arg(0), F, Fn->arg(1)); // Side effect: must stay.
  B.ret(Fn->arg(1));

  unsigned Removed = opt::eliminateDeadCode(Fn);
  EXPECT_EQ(Removed, 3u);
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(countInstructions(Fn), 2u); // putfield + ret.
}

TEST_F(OptTest, DceKeepsLoopCarriedPhis) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *H = Fn->addBlock("h");
  BasicBlock *Body = Fn->addBlock("body");
  BasicBlock *Exit = Fn->addBlock("exit");
  B.setInsertPoint(Entry);
  B.jump(H);
  B.setInsertPoint(H);
  PhiInst *I = B.phi(Type::I32);
  B.br(B.cmpLt(I, Fn->arg(0)), Body, Exit);
  B.setInsertPoint(Body);
  Value *I1 = B.add(I, B.i32(1));
  B.jump(H);
  B.setInsertPoint(Exit);
  B.ret(I);
  Fn->recomputePreds();
  I->addIncoming(Entry, M.intConst(Type::I32, 0));
  I->addIncoming(Body, I1);

  EXPECT_EQ(opt::eliminateDeadCode(Fn), 0u);
  EXPECT_TRUE(verifyMethod(Fn));
}

TEST_F(OptTest, PipelineCombinationReachesFixpoint) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  // (x + (2*8)) computed twice, second unused after CSE.
  Value *K = B.mul(B.i32(2), B.i32(8));
  Value *A1 = B.add(Fn->arg(0), K);
  Value *A2 = B.add(Fn->arg(0), K);
  (void)A2;
  B.ret(A1);

  opt::foldConstants(Fn);
  opt::localCSE(Fn);
  opt::eliminateDeadCode(Fn);
  EXPECT_TRUE(verifyMethod(Fn));
  EXPECT_EQ(countInstructions(Fn), 2u); // add + ret.
}

} // namespace
