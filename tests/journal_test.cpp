//===- tests/journal_test.cpp - Durable run journal and resume ------------===//
//
// The crash-resume contract: every journal line is durable and
// self-describing, a SIGKILL mid-write costs at most the (truncated)
// final line, resuming against an edited plan is refused outright, and a
// resumed run's per-cell records are byte-identical to the uninterrupted
// run's — grafted cells are never re-executed.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Journal.h"
#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"
#include "support/FaultInjection.h"
#include "workloads/Runner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spf;
using namespace spf::harness;

namespace {

/// A scratch journal path, removed on destruction.
struct TempJournal {
  std::string Path;
  explicit TempJournal(const char *Name)
      : Path(std::string(::testing::TempDir()) + Name) {
    std::remove(Path.c_str());
  }
  ~TempJournal() { std::remove(Path.c_str()); }
};

std::string slurp(const std::string &Path) {
  std::ifstream IS(Path);
  std::stringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

void spit(const std::string &Path, const std::string &Text) {
  std::ofstream OS(Path, std::ios::trunc);
  OS << Text;
}

/// A fabricated cell result with every codec-carried field set to a
/// distinctive value (no two fields equal, doubles non-round).
CellResult syntheticCell() {
  CellResult C;
  C.Ran = true;
  C.Attempts = 2;
  C.Error = "quoted \"err\"\nline2";
  workloads::RunResult &R = C.Run;
  R.CompiledCycles = 111;
  R.Retired = 222;
  R.JitTotalUs = 0.1 + 1.0 / 3.0; // Needs all 17 significant digits.
  R.JitPrefetchUs = 2.25;
  R.ReturnValue = 0xfeedfacecafeull; // > 2^32: full-width round-trip.
  R.SelfCheckOk = false;
  R.Replayed = true;
  R.InterpretUs = 333.125;
  R.ReplayUs = 444.0625;
  R.Mem.Loads = 1;
  R.Mem.Stores = 2;
  R.Mem.L1LoadMisses = 3;
  R.Mem.L1StoreMisses = 4;
  R.Mem.L2LoadMisses = 5;
  R.Mem.DtlbLoadMisses = 6;
  R.Mem.SwPrefetchesIssued = 7;
  R.Mem.SwPrefetchesCancelled = 8;
  R.Mem.GuardedLoads = 9;
  R.Mem.GuardedLoadFaults = 10;
  R.Mem.CyclesStalledOnLoads = 11;
  R.Exec.Retired = 222;
  R.Exec.PrefetchRelated = 12;
  R.Exec.Calls = 13;
  R.Exec.Allocations = 14;
  R.Exec.GcRuns = 15;
  R.Prefetch.LoopsVisited = 16;
  R.Prefetch.LoopsSkippedSmallTrip = 17;
  R.Prefetch.LoopsNotReached = 18;
  R.Prefetch.LoopsDegraded = 19;
  R.Prefetch.InspectionFaultsInjected = 20;
  R.Prefetch.CodeGen.Prefetches = 21;
  R.Prefetch.CodeGen.SpecLoads = 22;
  R.Sites.push_back({100, 30, 4, 1});
  R.Sites.push_back({200, 0, 0, 0});
  return C;
}

std::string recordJson(const CellResult &C) {
  std::ostringstream OS;
  JsonWriter J(OS);
  writeCellRecordJson(J, C);
  return OS.str();
}

harness::ExperimentPlan tinyPlan(unsigned Cells, const char *Workload) {
  harness::ExperimentPlan Plan;
  for (unsigned I = 0; I != Cells; ++I) {
    harness::ExperimentCell C;
    C.Group = "journal-test";
    C.Spec = workloads::findWorkload(Workload);
    C.Opt.Config.Scale = 0.05;
    C.Opt.Algo = I % 2 ? workloads::Algorithm::InterIntra
                       : workloads::Algorithm::Baseline;
    Plan.add(std::move(C));
  }
  return Plan;
}

// -- Cell-record codec -------------------------------------------------------

TEST(CellRecordCodecTest, RoundTripsEveryField) {
  CellResult Orig = syntheticCell();
  std::string Json = recordJson(Orig);

  std::string Err;
  auto V = JsonValue::parse(Json, &Err);
  ASSERT_NE(V, nullptr) << Err;
  CellResult Back;
  ASSERT_TRUE(parseCellRecord(*V, Back));

  EXPECT_EQ(Back.Ran, Orig.Ran);
  EXPECT_EQ(Back.Attempts, Orig.Attempts);
  EXPECT_EQ(Back.Error, Orig.Error);
  EXPECT_EQ(Back.Run.CompiledCycles, Orig.Run.CompiledCycles);
  EXPECT_EQ(Back.Run.Retired, Orig.Run.Retired);
  EXPECT_EQ(Back.Run.ReturnValue, Orig.Run.ReturnValue);
  EXPECT_EQ(Back.Run.SelfCheckOk, Orig.Run.SelfCheckOk);
  EXPECT_EQ(Back.Run.Replayed, Orig.Run.Replayed);
  EXPECT_EQ(Back.Run.JitTotalUs, Orig.Run.JitTotalUs); // Exact.
  EXPECT_EQ(Back.Run.InterpretUs, Orig.Run.InterpretUs);
  EXPECT_EQ(Back.Run.Mem, Orig.Run.Mem);
  EXPECT_EQ(Back.Run.Sites, Orig.Run.Sites);
  EXPECT_EQ(Back.Run.Exec.Allocations, Orig.Run.Exec.Allocations);
  EXPECT_EQ(Back.Run.Exec.GcRuns, Orig.Run.Exec.GcRuns);
  EXPECT_EQ(Back.Run.Prefetch.LoopsVisited, Orig.Run.Prefetch.LoopsVisited);
  EXPECT_EQ(Back.Run.Prefetch.CodeGen.SpecLoads,
            Orig.Run.Prefetch.CodeGen.SpecLoads);

  // Determinism: parse -> re-serialize is byte-identical. This is what
  // makes resumed reports byte-for-byte equal to uninterrupted ones.
  EXPECT_EQ(recordJson(Back), Json);
}

TEST(CellRecordCodecTest, RejectsNonRecordDocuments) {
  for (const char *Bad : {"[]", "42", "{\"run\":3}"}) {
    auto V = JsonValue::parse(Bad, nullptr);
    ASSERT_NE(V, nullptr) << Bad;
    CellResult C;
    EXPECT_FALSE(parseCellRecord(*V, C)) << Bad;
  }
}

// -- Journal file format -----------------------------------------------------

TEST(RunJournalTest, AppendThenLoadRoundTrips) {
  TempJournal T("journal_roundtrip.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(3, "jess");

  CellResult C0 = syntheticCell();
  CellResult C2 = syntheticCell();
  C2.Run.ReturnValue = 999;
  {
    RunJournal J(T.Path);
    std::string Err;
    ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;
    J.append(Plan, 0, C0);
    J.append(Plan, 2, C2); // Out of order and sparse: both fine.
  }

  RunJournal J2(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  std::string Err;
  ASSERT_TRUE(J2.load(Plan, Rec, &Err)) << Err;
  ASSERT_EQ(Rec.size(), 3u);
  ASSERT_TRUE(Rec[0].has_value());
  EXPECT_FALSE(Rec[1].has_value());
  ASSERT_TRUE(Rec[2].has_value());
  EXPECT_EQ(recordJson(*Rec[0]), recordJson(C0));
  EXPECT_EQ(Rec[2]->Run.ReturnValue, 999u);
}

TEST(RunJournalTest, MissingFileIsAnEmptyJournal) {
  TempJournal T("journal_missing.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(2, "jess");
  RunJournal J(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  std::string Err;
  ASSERT_TRUE(J.load(Plan, Rec, &Err)) << Err;
  ASSERT_EQ(Rec.size(), 2u);
  EXPECT_FALSE(Rec[0].has_value());
  EXPECT_FALSE(Rec[1].has_value());
}

TEST(RunJournalTest, RefusesAJournalOfADifferentPlan) {
  TempJournal T("journal_mismatch.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(2, "jess");
  {
    RunJournal J(T.Path);
    std::string Err;
    ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;
    J.append(Plan, 0, syntheticCell());
  }

  // Same size, different cells: the plan hash must differ and load must
  // refuse — grafting cell I of one plan onto cell I of another would
  // silently corrupt the report.
  harness::ExperimentPlan Other = tinyPlan(2, "db");
  EXPECT_NE(journalPlanHash(Plan), journalPlanHash(Other));
  RunJournal J2(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  std::string Err;
  EXPECT_FALSE(J2.load(Other, Rec, &Err));
  EXPECT_NE(Err.find("plan"), std::string::npos) << Err;
}

TEST(RunJournalTest, ToleratesATruncatedFinalLine) {
  TempJournal T("journal_truncated.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(2, "jess");
  {
    RunJournal J(T.Path);
    std::string Err;
    ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;
    J.append(Plan, 0, syntheticCell());
    J.append(Plan, 1, syntheticCell());
  }

  // Chop the file mid-way through the last line (SIGKILL mid-write).
  std::string Text = slurp(T.Path);
  size_t LastLine = Text.rfind("{\"key\"");
  ASSERT_NE(LastLine, std::string::npos);
  spit(T.Path, Text.substr(0, LastLine + 25));

  RunJournal J2(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  std::string Err;
  ASSERT_TRUE(J2.load(Plan, Rec, &Err)) << Err;
  ASSERT_EQ(Rec.size(), 2u);
  EXPECT_TRUE(Rec[0].has_value());  // The durable record survived.
  EXPECT_FALSE(Rec[1].has_value()); // The torn one is dropped.
}

TEST(RunJournalTest, RejectsACorruptInteriorLine) {
  TempJournal T("journal_corrupt.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(2, "jess");
  {
    RunJournal J(T.Path);
    std::string Err;
    ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;
    J.append(Plan, 0, syntheticCell());
    J.append(Plan, 1, syntheticCell());
  }

  // Corrupt the *first* record while the second stays intact: this is
  // not a torn tail, it is real corruption, and resuming from it must
  // fail loudly rather than silently re-run cell 0.
  std::string Text = slurp(T.Path);
  size_t First = Text.find("{\"key\"");
  ASSERT_NE(First, std::string::npos);
  Text[First] = '#';
  spit(T.Path, Text);

  RunJournal J2(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  std::string Err;
  EXPECT_FALSE(J2.load(Plan, Rec, &Err));
  EXPECT_FALSE(Err.empty());
}

// -- Resume through runPlan --------------------------------------------------

TEST(JournalResumeTest, ResumedRunGraftsWithoutReexecuting) {
  TempJournal T("journal_resume.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(4, "jess");

  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Journal.Path = T.Path;
  harness::ExperimentResult First = harness::runPlan(Plan, 2, Opts);
  ASSERT_TRUE(First.ok());
  EXPECT_EQ(First.JournalAppended, 4u);
  EXPECT_EQ(First.JournalGrafted, 0u);

  Opts.Journal.Resume = true;
  harness::ExperimentResult Second = harness::runPlan(Plan, 2, Opts);
  ASSERT_TRUE(Second.ok());
  EXPECT_EQ(Second.JournalGrafted, 4u);
  EXPECT_EQ(Second.JournalAppended, 0u);

  // Byte-identical per-cell records — including the wall-clock fields,
  // which a re-execution could never reproduce exactly. This is the
  // proof the grafted cells were not re-run.
  ASSERT_EQ(Second.Cells.size(), First.Cells.size());
  for (unsigned I = 0; I != First.Cells.size(); ++I)
    EXPECT_EQ(recordJson(Second.Cells[I]), recordJson(First.Cells[I]))
        << "cell " << I;
}

TEST(JournalResumeTest, PartialJournalRunsOnlyTheMissingCells) {
  TempJournal T("journal_partial.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(4, "jess");

  // Simulate an interrupted run: journal cells 0 and 2 only, with
  // sentinel wall-clock values no real run would produce.
  harness::RunPlanOptions Probe;
  Probe.Trace.Enabled = false;
  harness::ExperimentResult Full = harness::runPlan(Plan, 1, Probe);
  ASSERT_TRUE(Full.ok());
  {
    RunJournal J(T.Path);
    std::string Err;
    ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;
    CellResult C0 = Full.Cells[0];
    C0.Run.InterpretUs = 123456.5; // Sentinel: proves the graft.
    CellResult C2 = Full.Cells[2];
    C2.Run.InterpretUs = 654321.5;
    J.append(Plan, 0, C0);
    J.append(Plan, 2, C2);
  }

  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Journal.Path = T.Path;
  Opts.Journal.Resume = true;
  harness::ExperimentResult R = harness::runPlan(Plan, 2, Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.JournalGrafted, 2u);
  EXPECT_EQ(R.JournalAppended, 2u);
  EXPECT_EQ(R.Cells[0].Run.InterpretUs, 123456.5);
  EXPECT_EQ(R.Cells[2].Run.InterpretUs, 654321.5);
  // The re-run cells produced real (simulation-identical) results.
  EXPECT_EQ(R.Cells[1].Run.ReturnValue, Full.Cells[1].Run.ReturnValue);
  EXPECT_EQ(R.Cells[3].Run.ReturnValue, Full.Cells[3].Run.ReturnValue);

  // The journal is now complete: one more resume re-runs nothing.
  harness::ExperimentResult R2 = harness::runPlan(Plan, 2, Opts);
  EXPECT_EQ(R2.JournalGrafted, 4u);
  EXPECT_EQ(R2.JournalAppended, 0u);
}

// -- Degraded durability (injected ENOSPC/EIO) -------------------------------

TEST(JournalDegradedTest, FailedAppendIsCountedAndTheJournalStaysLoadable) {
  TempJournal T("journal_degraded_write.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(3, "jess");
  RunJournal J(T.Path);
  std::string Err;
  ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;
  EXPECT_FALSE(J.degraded());

  // Every injected write fails (both the attempt and the retry), so the
  // record is dropped — counted, latched, never fatal.
  auto C = support::FaultConfig::parse("disk-write:1:5");
  ASSERT_TRUE(C.has_value());
  support::FaultInjector Inj(*C);
  {
    support::FaultScope Scope(Inj);
    J.append(Plan, 0, syntheticCell());
  }
  EXPECT_TRUE(J.degraded());
  EXPECT_EQ(J.appendFailures(), 1u);
  EXPECT_EQ(J.syncFailures(), 0u);

  // Outside the fault scope appends work again; the degraded latch stays.
  J.append(Plan, 1, syntheticCell());
  EXPECT_TRUE(J.degraded());
  EXPECT_EQ(J.appendFailures(), 1u);

  // The journal holds exactly the records that really landed.
  RunJournal J2(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  ASSERT_TRUE(J2.load(Plan, Rec, &Err)) << Err;
  EXPECT_FALSE(Rec[0].has_value()); // Dropped: --resume re-runs it.
  EXPECT_TRUE(Rec[1].has_value());
  EXPECT_FALSE(Rec[2].has_value());
}

TEST(JournalDegradedTest, FailedFsyncCountsButKeepsTheRecord) {
  TempJournal T("journal_degraded_sync.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(1, "jess");
  RunJournal J(T.Path);
  std::string Err;
  ASSERT_TRUE(J.openForAppend(Plan, /*Fresh=*/true, &Err)) << Err;

  auto C = support::FaultConfig::parse("disk-sync:1:6");
  ASSERT_TRUE(C.has_value());
  support::FaultInjector Inj(*C);
  {
    support::FaultScope Scope(Inj);
    J.append(Plan, 0, syntheticCell());
  }
  EXPECT_TRUE(J.degraded());
  EXPECT_EQ(J.appendFailures(), 0u);
  EXPECT_EQ(J.syncFailures(), 1u);

  // The write itself succeeded: the record is in the file.
  RunJournal J2(T.Path);
  std::vector<std::optional<CellResult>> Rec;
  ASSERT_TRUE(J2.load(Plan, Rec, &Err)) << Err;
  EXPECT_TRUE(Rec[0].has_value());
}

TEST(JournalDegradedTest, ChaosAppendsDegradeTheSweepWithoutFailingIt) {
  // Through runPlan: with disk-write chaos at rate 1, every append drops.
  // The sweep completes clean, reports the degradation, and a resume
  // without chaos re-runs everything the journal lost.
  setenv("SPF_FAULTS", "disk-write:1:41", 1);
  TempJournal T("journal_chaos.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(3, "jess");
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Journal.Path = T.Path;
  harness::ExperimentResult R = harness::runPlan(Plan, 2, Opts);
  unsetenv("SPF_FAULTS");

  EXPECT_TRUE(R.ok()) << (R.Failures.empty() ? "" : R.Failures[0]);
  EXPECT_TRUE(R.JournalDegraded);
  EXPECT_EQ(R.JournalAppendFailures, 3u);
  EXPECT_EQ(R.JournalAppended, 0u); // Nothing actually landed.
  for (const CellResult &Cell : R.Cells)
    EXPECT_TRUE(Cell.Ran); // The cells themselves were untouched.

  Opts.Journal.Resume = true;
  harness::ExperimentResult R2 = harness::runPlan(Plan, 2, Opts);
  EXPECT_TRUE(R2.ok());
  EXPECT_EQ(R2.JournalGrafted, 0u); // The chaos run journaled nothing...
  EXPECT_EQ(R2.JournalAppended, 3u); // ...so the resume re-runs and lands.
  EXPECT_FALSE(R2.JournalDegraded);
}

} // namespace
