//===- examples/jess_inspector.cpp - Walking the paper's Section 2/3 ------===//
///
/// A narrated tour of the algorithm on the paper's own motivating example
/// (202_jess's findInMemory): build the Figure 1 world, construct the
/// load dependence graph, run object inspection with the actual argument
/// values, inspect the discovered stride patterns, and show the generated
/// prefetching code — each step through the public API.
///
/// Build & run:   ./build/examples/jess_inspector
///
//===----------------------------------------------------------------------===//

#include "core/PrefetchPass.h"
#include "ir/IRPrinter.h"
#include "workloads/Runner.h"

#include <iostream>

using namespace spf;
using namespace spf::core;

int main() {
  // 1. The world: the jess workload builder gives us a TokenVector full
  //    of scrambled tokens and the findInMemory method of Figure 1.
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  workloads::BuiltWorkload W = workloads::findWorkload("jess")->Build(Cfg);
  ir::Method *Find = W.Module->findMethod("Node2.findInMemory");
  const workloads::CompileUnit &CU = W.CompileUnits[0];
  std::cout << "== findInMemory, as the JIT receives it ==\n";
  ir::printMethod(std::cout, Find);

  // 2. Loop analysis: the doubly nested loop of Section 2.
  Find->recomputePreds();
  analysis::DominatorTree DT(Find);
  analysis::LoopInfo LI(Find, DT);
  std::cout << "\nLoops found: " << LI.numLoops() << " (outer header "
            << LI.topLevelLoops()[0]->header()->name() << ")\n";

  // 3. The load dependence graph (Section 3.1).
  analysis::Loop *Outer = LI.topLevelLoops()[0];
  LoadDependenceGraph Graph(Outer, LI);
  std::cout << "Load dependence graph: " << Graph.nodes().size()
            << " nodes, " << Graph.edges().size() << " edges\n";

  // 4. Object inspection (Section 3.2): partially interpret the method
  //    with the ACTUAL argument values of its first invocation.
  ObjectInspector Inspector(*W.Heap, LI);
  InspectionResult Insp = Inspector.inspect(Find, CU.Args, Outer, Graph);
  std::cout << "\nObject inspection: observed " << Insp.IterationsObserved
            << " iterations in " << Insp.StepsUsed
            << " interpreted steps (no side effects on the heap)\n";

  // 5. Stride patterns: only L4 (the v[i] load) has an inter-iteration
  //    pattern; (L9, L10) has an intra-iteration pattern.
  annotateStrides(Graph, Insp, StrideOptions());
  for (unsigned I = 0; I != Graph.nodes().size(); ++I)
    if (Graph.nodes()[I].InterStride)
      std::cout << "  inter-iteration stride on node " << I << ": "
                << *Graph.nodes()[I].InterStride << " bytes\n";
  for (const LdgEdge &E : Graph.edges())
    if (E.IntraStride)
      std::cout << "  intra-iteration stride on edge " << E.From << "->"
                << E.To << ": " << *E.IntraStride << " bytes\n";

  // 6. Code generation (Section 3.3), with the Pentium 4's parameters.
  PrefetchPassOptions Opts = workloads::passOptionsFor(
      (*sim::MachineConfig::byName("pentium4")), PrefetchMode::InterIntra);
  PrefetchPass Pass(*W.Heap, Opts);
  PrefetchPassResult R = Pass.run(Find, CU.Args);
  std::cout << "\nGenerated " << R.CodeGen.SpecLoads << " spec_load and "
            << R.CodeGen.Prefetches << " prefetch instruction(s); "
            << R.LoopsSkippedSmallTrip
            << " loop(s) skipped for small trip counts\n";

  std::cout << "\n== findInMemory after the pass ==\n";
  ir::printMethod(std::cout, Find);
  return 0;
}
