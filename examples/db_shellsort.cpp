//===- examples/db_shellsort.cpp - The paper's headline result ------------===//
///
/// Runs the 209_db sort kernel under the three evaluated configurations
/// (BASELINE, INTER, INTER+INTRA) on both machine models, printing the
/// cycle counts, miss events, and speedups — the experiment behind the
/// paper's "18.9% on the Pentium 4 and 25.1% on the Athlon MP" headline.
///
/// Build & run:   ./build/examples/db_shellsort        (takes ~30 s)
///                SPF_SCALE-style shrinking: pass a scale argument, e.g.
///                ./build/examples/db_shellsort 0.2
///
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>

using namespace spf;
using namespace spf::workloads;

int main(int argc, char **argv) {
  double Scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  if (Scale <= 0)
    Scale = 1.0;

  const WorkloadSpec *Db = findWorkload("db");
  std::printf("209_db shell sort, scale %.2f (records > L2, pages > DTLB)\n",
              Scale);

  for (auto Machine : {(*sim::MachineConfig::byName("pentium4")),
                       (*sim::MachineConfig::byName("athlonmp"))}) {
    std::printf("\n-- %s --\n", Machine.Name.c_str());
    std::printf("%-12s %14s %10s %10s %10s %9s\n", "config", "cycles",
                "L2 miss", "DTLB miss", "prefetch", "speedup");

    RunResult Base;
    for (Algorithm A : {Algorithm::Baseline, Algorithm::Inter,
                        Algorithm::InterIntra}) {
      RunOptions Opt;
      Opt.Machine = Machine;
      Opt.Algo = A;
      Opt.Config.Scale = Scale;
      RunResult R = runWorkload(*Db, Opt);
      if (A == Algorithm::Baseline)
        Base = R;
      if (R.ReturnValue != Base.ReturnValue) {
        std::fprintf(stderr, "result changed under %s!\n",
                     algorithmName(A));
        return 1;
      }
      double Speedup = speedupPercent(Base, R, Db->CompiledFraction);
      std::printf("%-12s %14llu %10llu %10llu %10llu %+8.1f%%\n",
                  algorithmName(A),
                  static_cast<unsigned long long>(R.CompiledCycles),
                  static_cast<unsigned long long>(R.Mem.L2LoadMisses),
                  static_cast<unsigned long long>(R.Mem.DtlbLoadMisses),
                  static_cast<unsigned long long>(
                      R.Mem.SwPrefetchesIssued + R.Mem.GuardedLoads),
                  Speedup);
    }
  }

  std::printf("\nPaper reference: +18.9%% on the Pentium 4, +25.1%% on the "
              "Athlon MP,\nwith INTER achieving nothing on either.\n");
  return 0;
}
