//===- examples/gc_strides.cpp - Why strides survive garbage collection ---===//
///
/// Demonstrates the paper's Section 4 observation that makes stride
/// prefetching viable in a garbage-collected heap at all: "Live objects
/// are packed by sliding compaction, which does not change their internal
/// order on the heap. Thus, the garbage collector usually preserves
/// constant strides among the live objects."
///
/// The program interleaves live strided records with garbage, shows the
/// irregular pitches before collection, collects, and shows the pitch
/// becoming perfectly constant — then runs a prefetched loop across
/// several forced collections.
///
/// Build & run:   ./build/examples/gc_strides
///
//===----------------------------------------------------------------------===//

#include "core/PrefetchPass.h"
#include "exec/Interpreter.h"
#include "ir/IRBuilder.h"
#include "sim/MachineConfig.h"
#include "vm/GarbageCollector.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <iostream>

using namespace spf;

int main() {
  vm::TypeTable Types;
  auto *Rec = Types.addClass("Record");
  const vm::FieldDesc *FV = Types.addField(Rec, "v", ir::Type::I64);
  for (int I = 0; I < 9; ++I) // 96-byte records: above half a P4 line.
    Types.addField(Rec, "pad" + std::to_string(I), ir::Type::I64);
  auto *Junk = Types.addClass("Junk");
  Types.addField(Junk, "x", ir::Type::I64);
  auto *Blob = Types.addClass("Blob"); // The loop's per-iteration garbage.
  for (int I = 0; I < 13; ++I)
    Types.addField(Blob, "y" + std::to_string(I), ir::Type::I64);

  vm::HeapConfig HC;
  HC.HeapBytes = 384 << 10; // Tight: the loop's garbage will force GC.
  vm::Heap Heap(Types, HC);
  vm::GarbageCollector Gc;

  // Allocate live records interleaved with differently-sized garbage:
  // the pitches are irregular, so no stride pattern exists yet.
  const unsigned N = 2000;
  std::vector<vm::Addr> Roots;
  vm::Addr Arr = Heap.allocArray(ir::Type::Ref, N);
  Roots.push_back(Arr);
  for (unsigned I = 0; I != N; ++I) {
    vm::Addr R = Heap.allocObject(*Rec);
    Heap.store(R + FV->Offset, ir::Type::I64, I);
    Heap.store(Heap.elemAddr(Arr, I), ir::Type::Ref, R);
    for (unsigned J = 0; J != I % 4; ++J)
      Heap.allocObject(*Junk); // Garbage between live records.
  }

  auto PitchOf = [&](unsigned I) {
    vm::Addr A = Heap.load(Heap.elemAddr(Roots[0], I), ir::Type::Ref);
    vm::Addr B = Heap.load(Heap.elemAddr(Roots[0], I + 1), ir::Type::Ref);
    return B - A;
  };
  std::cout << "Pitches before GC (irregular, garbage between records):\n ";
  for (unsigned I = 0; I != 8; ++I)
    std::cout << " " << PitchOf(I);

  std::vector<vm::Addr *> RootPtrs;
  for (vm::Addr &A : Roots)
    RootPtrs.push_back(&A);
  vm::GcStats S = Gc.collect(Heap, RootPtrs);
  std::cout << "\n\nCollected " << S.ReclaimedBytes << " bytes of garbage ("
            << S.LiveObjects << " objects live).\n";

  std::cout << "Pitches after sliding compaction (constant stride):\n ";
  for (unsigned I = 0; I != 8; ++I)
    std::cout << " " << PitchOf(I);
  std::cout << "\n\n";

  // The constant stride is now discoverable: build a summing loop that
  // also produces fresh garbage every iteration, prefetch it, and run it
  // through several more collections.
  ir::Module M;
  ir::IRBuilder B(M);
  ir::Method *Fn =
      M.addMethod("sum", ir::Type::I64, {ir::Type::Ref, ir::Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  ir::PhiInst *I = L.civ(B.i32(0));
  ir::PhiInst *Acc = L.addCarried(B.i64(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  ir::Value *Obj = B.aload(Fn->arg(0), I, ir::Type::Ref);
  L.setNext(Acc, B.add(Acc, B.getField(Obj, FV)));
  B.newObject(Blob); // 120 B of garbage per iteration: GCs will fire.
  L.close();
  B.ret(Acc);

  core::PrefetchPassOptions Opts = workloads::passOptionsFor(
      (*sim::MachineConfig::byName("pentium4")), core::PrefetchMode::InterIntra);
  core::PrefetchPass Pass(Heap, Opts);
  core::PrefetchPassResult R = Pass.run(Fn, {Roots[0], N});
  std::cout << "Prefetch pass after GC: " << R.CodeGen.Prefetches
            << " prefetch(es) inserted (stride discovered).\n";

  sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter Interp(Heap, Mem, &Roots);
  uint64_t Sum = Interp.run(Fn, {Roots[0], N});
  std::cout << "Loop ran with " << Interp.stats().GcRuns
            << " further collection(s); sum = " << Sum
            << " (expected " << (uint64_t)N * (N - 1) / 2 << ").\n";
  return Sum == (uint64_t)N * (N - 1) / 2 ? 0 : 1;
}
