//===- examples/mixed_mode.cpp - Compile-on-Nth-invocation ----------------===//
///
/// The paper's JVM "runs in a mixed-mode, meaning it selectively compiles
/// methods that are executed frequently" — which is exactly why object
/// inspection has actual parameter values to work with: the method is
/// compiled *at* an invocation. This example runs jess's findInMemory
/// repeatedly under the invocation counter and prints the per-call cycle
/// cost as it crosses from interpreted, to compiled, to compiled-with-
/// prefetching.
///
/// Build & run:   ./build/examples/mixed_mode
///
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "jit/CompileManager.h"
#include "workloads/Runner.h"

#include <iostream>

using namespace spf;
using namespace spf::workloads;

int main() {
  WorkloadConfig Cfg;
  Cfg.Scale = 0.3;
  BuiltWorkload W = findWorkload("jess")->Build(Cfg);
  ir::Method *Find = W.Module->findMethod("Node2.findInMemory");
  const auto &Args = W.CompileUnits[0].Args;

  jit::CompileManager::Options Opts;
  Opts.Pass = passOptionsFor((*sim::MachineConfig::byName("pentium4")),
                             core::PrefetchMode::InterIntra);
  jit::CompileManager Jit(*W.Heap, Opts);

  sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter Interp(*W.Heap, Mem, &W.Roots);
  Interp.enableMixedMode(
      [&](ir::Method *M, const std::vector<uint64_t> &A) {
        jit::CompileResult R = Jit.compile(M, A);
        std::cout << "  [JIT] compiled " << M->name() << " in "
                  << R.Timings.totalUs() << " us ("
                  << R.Prefetch.CodeGen.SpecLoads << " spec_load, "
                  << R.Prefetch.CodeGen.Prefetches
                  << " prefetch inserted using this invocation's "
                     "arguments)\n";
      },
      /*Threshold=*/3, /*InterpPenalty=*/9);

  std::cout << "findInMemory per-invocation cost on the simulated "
               "Pentium 4:\n";
  for (int Call = 1; Call <= 6; ++Call) {
    uint64_t Before = Mem.cycles();
    uint64_t R = Interp.run(Find, Args);
    uint64_t Cost = Mem.cycles() - Before;
    std::cout << "  call " << Call << ": " << Cost << " cycles"
              << (Interp.isCompiled(Find) ? "  (compiled)"
                                          : "  (interpreted)")
              << "  result=" << (R ? "hit" : "miss") << "\n";
  }
  return 0;
}
