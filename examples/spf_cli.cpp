//===- examples/spf_cli.cpp - Command-line driver -------------------------===//
///
/// A small driver over the public API:
///
///   spf_cli list
///       The 12 Table 3 workloads.
///   spf_cli run --workload db [--machine p4|athlon]
///               [--algo baseline|inter|inter+intra] [--scale 0.5] [-c N]
///       Build, JIT-compile, and simulate one workload; print the
///       Figure 6-10 measurements.
///   spf_cli dump --workload jess [--prefetch] [--machine p4|athlon]
///       Print the hot method's IR, optionally after the prefetch pass.
///
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "workloads/Runner.h"

#include <cstring>
#include <iostream>

using namespace spf;
using namespace spf::workloads;

namespace {

struct Cli {
  std::string Command;
  std::string Workload = "jess";
  sim::MachineConfig Machine = (*sim::MachineConfig::byName("pentium4"));
  Algorithm Algo = Algorithm::InterIntra;
  double Scale = 1.0;
  unsigned Distance = 1;
  bool Prefetch = false;
};

int usage() {
  std::cerr << "usage: spf_cli list\n"
               "       spf_cli run  --workload NAME [--machine p4|athlon]\n"
               "                    [--algo baseline|inter|inter+intra]\n"
               "                    [--scale X] [-c N]\n"
               "       spf_cli dump --workload NAME [--prefetch]\n"
               "                    [--machine p4|athlon]\n";
  return 2;
}

bool parseArgs(int Argc, char **Argv, Cli &C) {
  if (Argc < 2)
    return false;
  C.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--workload") {
      const char *V = Next();
      if (!V)
        return false;
      C.Workload = V;
    } else if (A == "--machine") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "p4") == 0)
        C.Machine = (*sim::MachineConfig::byName("pentium4"));
      else if (std::strcmp(V, "athlon") == 0)
        C.Machine = (*sim::MachineConfig::byName("athlonmp"));
      else
        return false;
    } else if (A == "--algo") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "baseline") == 0)
        C.Algo = Algorithm::Baseline;
      else if (std::strcmp(V, "inter") == 0)
        C.Algo = Algorithm::Inter;
      else if (std::strcmp(V, "inter+intra") == 0)
        C.Algo = Algorithm::InterIntra;
      else
        return false;
    } else if (A == "--scale") {
      const char *V = Next();
      if (!V)
        return false;
      C.Scale = std::atof(V);
    } else if (A == "-c") {
      const char *V = Next();
      if (!V)
        return false;
      C.Distance = static_cast<unsigned>(std::atoi(V));
    } else if (A == "--prefetch") {
      C.Prefetch = true;
    } else {
      return false;
    }
  }
  return true;
}

int cmdList() {
  for (const WorkloadSpec &S : allWorkloads())
    std::cout << S.Name << "\t" << S.Description << "\n";
  return 0;
}

int cmdRun(const Cli &C) {
  const WorkloadSpec *Spec = findWorkload(C.Workload);
  if (!Spec) {
    std::cerr << "unknown workload '" << C.Workload << "'\n";
    return 1;
  }
  RunOptions Opt;
  Opt.Machine = C.Machine;
  Opt.Algo = C.Algo;
  Opt.Config.Scale = C.Scale > 0 ? C.Scale : 1.0;
  if (C.Distance != 1)
    Opt.TunePass = [&C](core::PrefetchPassOptions &P) {
      P.Planner.ScheduleDistance = C.Distance;
    };
  RunResult R = runWorkload(*Spec, Opt);

  std::cout << Spec->Name << " on " << C.Machine.Name << " under "
            << algorithmName(C.Algo) << " (scale " << Opt.Config.Scale
            << ")\n";
  std::cout << "  compiled cycles:   " << R.CompiledCycles << "\n";
  std::cout << "  retired instrs:    " << R.Retired << "\n";
  std::cout << "  loads:             " << R.Mem.Loads << "\n";
  std::cout << "  L1 load misses:    " << R.Mem.L1LoadMisses << "\n";
  std::cout << "  L2 load misses:    " << R.Mem.L2LoadMisses << "\n";
  std::cout << "  DTLB load misses:  " << R.Mem.DtlbLoadMisses << "\n";
  std::cout << "  sw prefetches:     " << R.Mem.SwPrefetchesIssued << " ("
            << R.Mem.SwPrefetchesCancelled << " cancelled)\n";
  std::cout << "  guarded loads:     " << R.Mem.GuardedLoads << "\n";
  std::cout << "  GC runs:           " << R.Exec.GcRuns << "\n";
  std::cout << "  JIT time:          " << R.JitTotalUs / 1000.0 << " ms ("
            << R.JitPrefetchUs / 1000.0 << " ms prefetch pass)\n";
  std::cout << "  result:            " << R.ReturnValue
            << (R.SelfCheckOk ? " [self-check ok]" : " [SELF-CHECK FAIL]")
            << "\n";
  return R.SelfCheckOk ? 0 : 1;
}

int cmdDump(const Cli &C) {
  const WorkloadSpec *Spec = findWorkload(C.Workload);
  if (!Spec) {
    std::cerr << "unknown workload '" << C.Workload << "'\n";
    return 1;
  }
  WorkloadConfig Cfg;
  Cfg.Scale = 0.05; // The IR is size-independent.
  BuiltWorkload W = Spec->Build(Cfg);
  ir::Method *Hot = W.CompileUnits[0].M;

  if (C.Prefetch) {
    core::PrefetchPassOptions Opts =
        passOptionsFor(C.Machine, core::PrefetchMode::InterIntra);
    core::PrefetchPass Pass(*W.Heap, Opts);
    core::PrefetchPassResult R = Pass.run(Hot, W.CompileUnits[0].Args);
    std::cout << "; after stride prefetching for " << C.Machine.Name
              << ": " << R.CodeGen.SpecLoads << " spec_load(s), "
              << R.CodeGen.Prefetches << " prefetch(es)\n";
  }
  ir::printMethod(std::cout, Hot);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C;
  if (!parseArgs(Argc, Argv, C))
    return usage();
  if (C.Command == "list")
    return cmdList();
  if (C.Command == "run")
    return cmdRun(C);
  if (C.Command == "dump")
    return cmdDump(C);
  return usage();
}
