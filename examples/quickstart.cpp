//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
///
/// Builds a small list-of-objects traversal in the JIT IR, runs the stride
/// prefetching pass with the actual argument values (object inspection),
/// prints the method before and after, and executes both versions on the
/// simulated Pentium 4 to show the cycle and miss improvements.
///
/// Build & run:   cmake -B build -G Ninja && cmake --build build
///                ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/PrefetchPass.h"
#include "exec/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "sim/MachineConfig.h"
#include "sim/MemorySystem.h"

#include <iostream>

using namespace spf;

int main() {
  // -- 1. Declare classes and build a heap ----------------------------------
  vm::TypeTable Types;
  vm::ClassDesc *Point = Types.addClass("Point");
  const vm::FieldDesc *FX = Types.addField(Point, "x", ir::Type::F64);
  const vm::FieldDesc *FY = Types.addField(Point, "y", ir::Type::F64);
  // Pad the object so its pitch exceeds half a cache line.
  for (int I = 0; I < 8; ++I)
    Types.addField(Point, "pad" + std::to_string(I), ir::Type::F64);

  vm::Heap::Config HC;
  HC.HeapBytes = 32ull << 20;
  vm::Heap Heap(Types, HC);

  // Allocate 40k points consecutively and collect them in a ref array:
  // the allocation order is exactly what gives the loads stride patterns.
  const unsigned N = 40000;
  vm::Addr Arr = Heap.allocArray(ir::Type::Ref, N);
  for (unsigned I = 0; I != N; ++I) {
    vm::Addr P = Heap.allocObject(*Point);
    double V = 0.25 * I;
    uint64_t Bits;
    __builtin_memcpy(&Bits, &V, 8);
    Heap.store(P + FX->Offset, ir::Type::F64, Bits);
    Heap.store(P + FY->Offset, ir::Type::F64, Bits);
    Heap.store(Heap.elemAddr(Arr, I), ir::Type::Ref, P);
  }

  // -- 2. Build the method: sum += a[i].x * a[i].y over the array -----------
  ir::Module M;
  ir::Method *Sum = M.addMethod("sumPoints", ir::Type::F64,
                                {ir::Type::Ref, ir::Type::I32});
  ir::IRBuilder B(M);
  ir::BasicBlock *Entry = Sum->addBlock("entry");
  ir::BasicBlock *Header = Sum->addBlock("loop.header");
  ir::BasicBlock *Body = Sum->addBlock("loop.body");
  ir::BasicBlock *Exit = Sum->addBlock("loop.exit");

  B.setInsertPoint(Entry);
  B.jump(Header);

  B.setInsertPoint(Header);
  ir::PhiInst *I = B.phi(ir::Type::I32);
  ir::PhiInst *Acc = B.phi(ir::Type::F64);
  B.br(B.cmpLt(I, Sum->arg(1)), Body, Exit);

  B.setInsertPoint(Body);
  ir::Value *P = B.aload(Sum->arg(0), I, ir::Type::Ref);
  ir::Value *X = B.getField(P, FX);
  ir::Value *Y = B.getField(P, FY);
  ir::Value *Acc1 = B.add(Acc, B.mul(X, Y));
  ir::Value *I1 = B.add(I, B.i32(1));
  B.jump(Header);

  B.setInsertPoint(Exit);
  B.ret(Acc);

  Sum->recomputePreds();
  I->addIncoming(Entry, M.intConst(ir::Type::I32, 0));
  I->addIncoming(Body, I1);
  Acc->addIncoming(Entry, M.floatConst(0.0));
  Acc->addIncoming(Body, Acc1);

  std::vector<std::string> Errors;
  if (!ir::verifyMethod(Sum, &Errors)) {
    for (const auto &E : Errors)
      std::cerr << "verifier: " << E << "\n";
    return 1;
  }

  std::cout << "== Method before stride prefetching ==\n";
  ir::printMethod(std::cout, Sum);

  // -- 3. Baseline run on the simulated Pentium 4 ---------------------------
  sim::MachineConfig P4 = *sim::MachineConfig::byName("pentium4");
  std::vector<uint64_t> Args = {Arr, N};

  uint64_t BaseCycles, BaseL2Miss;
  {
    sim::MemorySystem Mem(P4);
    exec::Interpreter Interp(Heap, Mem);
    Interp.run(Sum, Args);
    BaseCycles = Mem.cycles();
    BaseL2Miss = Mem.stats().L2LoadMisses;
  }

  // -- 4. The paper's pass: object inspection + stride prefetching ----------
  core::PrefetchPassOptions Opts;
  Opts.Planner.Mode = core::PrefetchMode::InterIntra;
  Opts.Planner.LineBytes = P4.swFillLineBytes(); // SW prefetch fills the L2.
  core::PrefetchPass Pass(Heap, Opts);
  core::PrefetchPassResult R = Pass.run(Sum, Args);

  std::cout << "\n== After: " << R.CodeGen.Prefetches << " prefetch(es), "
            << R.CodeGen.SpecLoads << " spec_load(s) inserted ==\n";
  ir::printMethod(std::cout, Sum);

  uint64_t OptCycles, OptL2Miss;
  {
    sim::MemorySystem Mem(P4);
    exec::Interpreter Interp(Heap, Mem);
    Interp.run(Sum, Args);
    OptCycles = Mem.cycles();
    OptL2Miss = Mem.stats().L2LoadMisses;
  }

  std::cout << "\nPentium 4 model:  baseline " << BaseCycles << " cycles, "
            << BaseL2Miss << " L2 load misses\n";
  std::cout << "    prefetching:  " << OptCycles << " cycles, " << OptL2Miss
            << " L2 load misses\n";
  std::cout << "        speedup:  "
            << (static_cast<double>(BaseCycles) /
                    static_cast<double>(OptCycles) -
                1.0) *
                   100.0
            << "%\n";
  return 0;
}
