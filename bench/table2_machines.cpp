//===- bench/table2_machines.cpp - Table 2 --------------------------------===//
///
/// Reproduces Table 2: "Parameters related to prefetching on the Pentium 4
/// and the Athlon MP", plus the cycle-model additions our simulator needs.
///
//===----------------------------------------------------------------------===//

#include "sim/MachineConfig.h"

#include <cstdio>

using namespace spf::sim;

static void printRow(const MachineConfig &C) {
  std::printf("%-10s %8llu %8u %8llu %8u %7u\n", C.Name.c_str(),
              static_cast<unsigned long long>(C.Levels[0].Geometry.SizeBytes /
                                              1024),
              C.Levels[0].Geometry.LineBytes,
              static_cast<unsigned long long>(C.Levels[1].Geometry.SizeBytes /
                                              1024),
              C.Levels[1].Geometry.LineBytes, C.TlbEntries);
}

int main() {
  std::printf("Table 2: parameters related to prefetching\n");
  std::printf("%-10s %8s %8s %8s %8s %7s\n", "Processor", "L1(KB)",
              "L1line", "L2(KB)", "L2line", "#DTLB");
  MachineConfig P4 = *MachineConfig::byName("pentium4");
  MachineConfig At = *MachineConfig::byName("athlonmp");
  printRow(P4);
  printRow(At);

  std::printf("\nCycle model (exposed penalties) and prefetch semantics:\n");
  for (const MachineConfig &C : {P4, At}) {
    std::printf(
        "%-10s  L1hit=%u L2hit=+%u mem=+%u dtlbmiss=+%u fill=%u "
        "swprefetch->%s guarded-intra=%s hwprefetch=%s\n",
        C.Name.c_str(), C.Levels[0].HitCycles, C.Levels[1].HitCycles,
        C.MemPenalty, C.TlbMissPenalty, C.PrefetchFillLatency,
        C.Levels[C.SwFillLevel].Label.c_str(), C.SwFillLevel > 0 ? "yes" : "no",
        hwPrefetchKindName(C.HwPrefetch));
  }
  return 0;
}
