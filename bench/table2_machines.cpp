//===- bench/table2_machines.cpp - Table 2 --------------------------------===//
///
/// Reproduces Table 2: "Parameters related to prefetching on the Pentium 4
/// and the Athlon MP", plus the cycle-model additions our simulator needs.
///
//===----------------------------------------------------------------------===//

#include "sim/MachineConfig.h"

#include <cstdio>

using namespace spf::sim;

static void printRow(const MachineConfig &C) {
  std::printf("%-10s %8llu %8u %8llu %8u %7u\n", C.Name.c_str(),
              static_cast<unsigned long long>(C.L1.SizeBytes / 1024),
              C.L1.LineBytes,
              static_cast<unsigned long long>(C.L2.SizeBytes / 1024),
              C.L2.LineBytes, C.TlbEntries);
}

int main() {
  std::printf("Table 2: parameters related to prefetching\n");
  std::printf("%-10s %8s %8s %8s %8s %7s\n", "Processor", "L1(KB)",
              "L1line", "L2(KB)", "L2line", "#DTLB");
  MachineConfig P4 = MachineConfig::pentium4();
  MachineConfig At = MachineConfig::athlonMP();
  printRow(P4);
  printRow(At);

  std::printf("\nCycle model (exposed penalties) and prefetch semantics:\n");
  for (const MachineConfig &C : {P4, At}) {
    std::printf(
        "%-10s  L1hit=%u L2hit=+%u mem=+%u dtlbmiss=+%u fill=%u "
        "swprefetch->%s guarded-intra=%s\n",
        C.Name.c_str(), C.L1HitCycles, C.L2HitPenalty, C.MemPenalty,
        C.TlbMissPenalty, C.PrefetchFillLatency,
        C.SwPrefetchFill == PrefetchFillLevel::L2 ? "L2" : "L1",
        C.SwPrefetchFill == PrefetchFillLevel::L2 ? "yes" : "no");
  }
  return 0;
}
