//===- bench/adaptation.cpp - Governor recovery under GC perturbation -----===//
///
/// Measures how much of the cycle regression caused by a perturbing GC
/// variant the online prefetch-health governor wins back. For each GC
/// variant x workload it runs four cells over the same multi-epoch
/// program:
///
///   compact   INTER+INTRA, sliding-compact GC   (the healthy reference)
///   disabled  BASELINE,    perturbing variant   (no prefetch = floor)
///   off       INTER+INTRA, perturbing variant   (stale plans, ungoverned)
///   on        INTER+INTRA, perturbing variant + governor
///
/// and reports, per row, the regression each of off/on shows against the
/// compacting reference plus the recovered fraction
///   recovery = (off - on) / (off - compact)
///
/// The binary enforces the robustness contract and exits 1 when it does
/// not hold at this scale:
///   - under address-shuffle, governor-on must recover >= 50% of the
///     governor-off regression on at least MinRecovered workloads;
///   - a governed run must never be slower than the prefetch-disabled
///     floor (beyond a 2% tolerance).
///
/// Usage:
///   adaptation [--out FILE] [--workloads a,b,c] [--epochs N]
///              [--min-recovered N] [--check-against FILE] [--jobs N]
///
///   --out FILE          JSON report path (default: BENCH_adaptation.json;
///                       "-" for stdout). The committed copy at the repo
///                       root is CI's regression baseline.
///   --workloads CSV     workload subset (default: db,jack,MonteCarlo)
///   --epochs N          epochs per cell, >= 2 (default 10; or SPF_EPOCHS)
///   --min-recovered N   how many address-shuffle workloads must clear the
///                       50% recovery bar (default 3, clamped to the
///                       workload count)
///   --check-against F   also load a previous report and fail (exit 1) if
///                       any address-shuffle recovery fraction regressed
///                       by more than 20 points of its baseline value —
///                       the CI gate against the committed report
///   SPF_SCALE=0.1       reduced problem scale, as for every bench binary
///
/// Exit code 1 on any self-check failure, contract violation, or
/// --check-against regression; support::ConfigErrorExit (2) for invalid
/// flags.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "harness/JsonReader.h"
#include "harness/ReportDiff.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

namespace {

/// The three placement policies that perturb inspected strides.
const vm::GcVariant PerturbingVariants[] = {
    vm::GcVariant::MarkSweep,
    vm::GcVariant::AddressShuffle,
    vm::GcVariant::PromotionOrder,
};

struct WorkloadRow {
  const WorkloadSpec *Spec = nullptr;
  unsigned Compact = 0;  ///< Cell index: INTER+INTRA, sliding-compact.
  unsigned Disabled = 0; ///< Cell index: BASELINE, perturbing variant.
  unsigned Off = 0;      ///< Cell index: INTER+INTRA, ungoverned.
  unsigned On = 0;       ///< Cell index: INTER+INTRA, governed.
};

struct RowResult {
  std::string Workload;
  uint64_t CompactCycles = 0;
  uint64_t DisabledCycles = 0;
  uint64_t OffCycles = 0;
  uint64_t OnCycles = 0;
  double RegressionOffPct = 0; ///< off vs compact, percent.
  double RegressionOnPct = 0;  ///< on vs compact, percent.
  double Recovery = 0;         ///< (off-on)/(off-compact), clamped to [0,1].
  bool Recovered = false;      ///< Recovery >= 0.5 with a real regression.
  bool NeverWorse = false;     ///< on <= disabled * (1 + NeverWorseTolerance).
  unsigned Quarantined = 0;
  unsigned Retunes = 0;
  unsigned Reinspections = 0;
};

/// Slack allowed on the "never slower than prefetch-disabled" contract,
/// absorbing the governed run's first-epoch learning cost.
constexpr double NeverWorseTolerance = 0.02;

std::vector<const WorkloadSpec *> selectWorkloads(const std::string &Csv) {
  std::vector<const WorkloadSpec *> Specs;
  std::stringstream SS(Csv);
  std::string Name;
  while (std::getline(SS, Name, ',')) {
    if (const WorkloadSpec *S = findWorkload(Name))
      Specs.push_back(S);
    else
      reportFailure("unknown workload '" + Name + "'");
  }
  return Specs;
}

unsigned addCell(harness::ExperimentPlan &Plan, const WorkloadSpec *Spec,
                 const sim::MachineConfig &Machine, Algorithm Algo,
                 vm::GcVariant Variant, bool Governor, unsigned Epochs,
                 const std::string &Group) {
  harness::ExperimentCell Cell;
  Cell.Group = Group;
  Cell.Spec = Spec;
  Cell.Opt.Machine = Machine;
  Cell.Opt.Algo = Algo;
  Cell.Opt.Config = benchConfig();
  Cell.Opt.Epochs = Epochs;
  Cell.Opt.GcVariant = Variant;
  Cell.Opt.Governor = Governor;
  return Plan.add(std::move(Cell));
}

RowResult foldRow(const WorkloadRow &Row,
                  const harness::ExperimentResult &Result) {
  RowResult R;
  R.Workload = Row.Spec->Name;
  R.CompactCycles = Result.run(Row.Compact).CompiledCycles;
  R.DisabledCycles = Result.run(Row.Disabled).CompiledCycles;
  R.OffCycles = Result.run(Row.Off).CompiledCycles;
  R.OnCycles = Result.run(Row.On).CompiledCycles;
  const RunResult &On = Result.run(Row.On);
  R.Quarantined = On.GovernorQuarantined;
  R.Retunes = On.GovernorRetunes;
  R.Reinspections = On.GovernorReinspections;
  auto Pct = [&](uint64_t Cycles) {
    return R.CompactCycles
               ? 100.0 * (static_cast<double>(Cycles) /
                              static_cast<double>(R.CompactCycles) -
                          1.0)
               : 0.0;
  };
  R.RegressionOffPct = Pct(R.OffCycles);
  R.RegressionOnPct = Pct(R.OnCycles);
  if (R.OffCycles > R.CompactCycles) {
    double Lost = static_cast<double>(R.OffCycles - R.CompactCycles);
    double WonBack = static_cast<double>(R.OffCycles) -
                     static_cast<double>(R.OnCycles);
    R.Recovery = std::min(1.0, std::max(0.0, WonBack / Lost));
    R.Recovered = R.Recovery >= 0.5;
  } else {
    // The variant did not actually regress this workload; the governor
    // has nothing to recover and trivially passes.
    R.Recovery = 1.0;
    R.Recovered = true;
  }
  R.NeverWorse = static_cast<double>(R.OnCycles) <=
                 static_cast<double>(R.DisabledCycles) *
                     (1.0 + NeverWorseTolerance);
  return R;
}

void writeRowJson(harness::JsonWriter &J, const RowResult &R) {
  J.beginObject();
  J.key("workload").value(R.Workload);
  J.key("compact_cycles").value(R.CompactCycles);
  J.key("disabled_cycles").value(R.DisabledCycles);
  J.key("off_cycles").value(R.OffCycles);
  J.key("on_cycles").value(R.OnCycles);
  J.key("regression_off_pct").value(R.RegressionOffPct);
  J.key("regression_on_pct").value(R.RegressionOnPct);
  J.key("recovery").value(R.Recovery);
  J.key("recovered").value(R.Recovered);
  J.key("never_worse_than_disabled").value(R.NeverWorse);
  J.key("governor_quarantined").value(static_cast<uint64_t>(R.Quarantined));
  J.key("governor_retunes").value(static_cast<uint64_t>(R.Retunes));
  J.key("governor_reinspections")
      .value(static_cast<uint64_t>(R.Reinspections));
  J.endObject();
}

/// CI gate: diffs this run's report against the committed baseline
/// through harness::diffReports — the same comparator (and default
/// thresholds: a recovery drop of more than 0.20 is a regression) that
/// `spf-report diff` applies, so this gate and the throughput gate can
/// never drift apart. \p ReportText is this run's own report JSON.
void checkAgainst(const std::string &Path, const std::string &ReportText) {
  std::ifstream IS(Path);
  if (!IS) {
    reportFailure("--check-against: cannot read " + Path);
    return;
  }
  std::stringstream SS;
  SS << IS.rdbuf();
  std::string Error;
  std::unique_ptr<harness::JsonValue> Baseline =
      harness::JsonValue::parse(SS.str(), &Error);
  if (!Baseline) {
    reportFailure("--check-against: " + Path + ": " + Error);
    return;
  }
  std::unique_ptr<harness::JsonValue> Fresh =
      harness::JsonValue::parse(ReportText, &Error);
  if (!Fresh) {
    reportFailure("--check-against: this run's report: " + Error);
    return;
  }
  harness::DiffResult D =
      harness::diffReports(*Baseline, *Fresh, harness::DiffThresholds());
  if (!D.Comparable) {
    reportFailure("--check-against: " + D.Error);
    return;
  }
  for (const harness::DiffFinding &F : D.Findings)
    if (F.Regression)
      reportFailure("--check-against: " + F.Where + ": " + F.Detail +
                    " (baseline " + std::to_string(F.Ref) + ", this run " +
                    std::to_string(F.Got) + ")");
}

} // namespace

int main(int argc, char **argv) {
  init(argc, argv);
  std::string OutPath = "BENCH_adaptation.json";
  std::string WorkloadCsv = "db,jack,MonteCarlo";
  std::string CheckPath;
  unsigned MinRecovered = 3;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--out" && I + 1 < argc)
      OutPath = argv[++I];
    else if (A.rfind("--out=", 0) == 0)
      OutPath = A.substr(6);
    else if (A == "--workloads" && I + 1 < argc)
      WorkloadCsv = argv[++I];
    else if (A.rfind("--workloads=", 0) == 0)
      WorkloadCsv = A.substr(12);
    else if (A == "--check-against" && I + 1 < argc)
      CheckPath = argv[++I];
    else if (A.rfind("--check-against=", 0) == 0)
      CheckPath = A.substr(16);
    else if (A == "--min-recovered" && I + 1 < argc)
      MinRecovered = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (A.rfind("--min-recovered=", 0) == 0)
      MinRecovered = static_cast<unsigned>(std::atoi(A.c_str() + 16));
  }
  AdaptationKnobs Knobs = adaptationFromArgs(argc, argv);
  // Adaptation needs epoch boundaries to act at; --epochs 1 (or the
  // default) means "use the bench default" here.
  unsigned Epochs = Knobs.Epochs > 1 ? Knobs.Epochs : 10;

  std::vector<const WorkloadSpec *> Specs = selectWorkloads(WorkloadCsv);
  if (Specs.empty()) {
    reportFailure("no workloads selected");
    return exitCode();
  }
  MinRecovered = std::min<unsigned>(
      MinRecovered ? MinRecovered : 1, static_cast<unsigned>(Specs.size()));

  const sim::MachineConfig Machine =
      *sim::MachineConfig::byName("pentium4");

  harness::ExperimentPlan Plan;
  // One compacting reference per workload, shared by every variant.
  std::vector<WorkloadRow> Template;
  for (const WorkloadSpec *Spec : Specs) {
    WorkloadRow Row;
    Row.Spec = Spec;
    Row.Compact =
        addCell(Plan, Spec, Machine, Algorithm::InterIntra,
                vm::GcVariant::SlidingCompact, /*Governor=*/false, Epochs,
                "adapt:compact");
    Template.push_back(Row);
  }
  std::vector<std::vector<WorkloadRow>> VariantRows;
  for (vm::GcVariant V : PerturbingVariants) {
    std::vector<WorkloadRow> Rows = Template;
    std::string Group = std::string("adapt:") + vm::gcVariantName(V);
    for (WorkloadRow &Row : Rows) {
      Row.Disabled = addCell(Plan, Row.Spec, Machine, Algorithm::Baseline,
                             V, /*Governor=*/false, Epochs, Group);
      Row.Off = addCell(Plan, Row.Spec, Machine, Algorithm::InterIntra, V,
                        /*Governor=*/false, Epochs, Group);
      Row.On = addCell(Plan, Row.Spec, Machine, Algorithm::InterIntra, V,
                       /*Governor=*/true, Epochs, Group);
    }
    VariantRows.push_back(std::move(Rows));
  }

  std::printf("adaptation: %zu cells (%zu workloads x %zu variants x "
              "{disabled,off,on} + %zu references), epochs=%u, "
              "scale=%.2f\n",
              Plan.size(), Specs.size(), std::size(PerturbingVariants),
              Specs.size(), Epochs, scaleFromEnv());

  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);

  std::vector<std::vector<RowResult>> Folded;
  for (size_t K = 0; K != std::size(PerturbingVariants); ++K) {
    vm::GcVariant V = PerturbingVariants[K];
    std::vector<RowResult> Rows;
    unsigned Recovered = 0;
    std::printf("\n%s: cycles [regression vs compacting reference]\n",
                vm::gcVariantName(V));
    std::printf("%-12s %12s %12s %12s %12s %9s %6s %6s %6s\n", "benchmark",
                "compact", "disabled", "gov-off", "gov-on", "recovery",
                "quar", "retune", "reinsp");
    for (const WorkloadRow &Row : VariantRows[K]) {
      RowResult R = foldRow(Row, Result);
      std::printf("%-12s %12llu %12llu %12llu %12llu %8.0f%% %6u %6u %6u\n",
                  R.Workload.c_str(),
                  static_cast<unsigned long long>(R.CompactCycles),
                  static_cast<unsigned long long>(R.DisabledCycles),
                  static_cast<unsigned long long>(R.OffCycles),
                  static_cast<unsigned long long>(R.OnCycles),
                  100.0 * R.Recovery, R.Quarantined, R.Retunes,
                  R.Reinspections);
      if (!R.NeverWorse)
        reportFailure("governed run slower than prefetch-disabled on " +
                      R.Workload + " under " + vm::gcVariantName(V) + " (" +
                      std::to_string(R.OnCycles) + " > " +
                      std::to_string(R.DisabledCycles) + " cycles)");
      Recovered += R.Recovered;
      Rows.push_back(std::move(R));
    }
    if (V == vm::GcVariant::AddressShuffle) {
      if (Recovered < MinRecovered)
        reportFailure(
            "address-shuffle: only " + std::to_string(Recovered) + " of " +
            std::to_string(Specs.size()) +
            " workloads recovered >= 50% (need " +
            std::to_string(MinRecovered) + ")");
    }
    Folded.push_back(std::move(Rows));
  }

  auto WriteReport = [&](std::ostream &OS) {
    harness::JsonWriter J(OS);
    J.beginObject();
    J.key("schema").value("spf-bench-adaptation-v1");
    J.key("scale").value(scaleFromEnv());
    J.key("epochs").value(static_cast<uint64_t>(Epochs));
    J.key("machine").value(Machine.Name);
    J.key("variants");
    J.beginArray();
    for (size_t K = 0; K != Folded.size(); ++K) {
      J.beginObject();
      J.key("gc_variant").value(vm::gcVariantName(PerturbingVariants[K]));
      J.key("workloads");
      J.beginArray();
      for (const RowResult &R : Folded[K])
        writeRowJson(J, R);
      J.endArray();
      J.endObject();
    }
    J.endArray();
    J.key("failures").value(static_cast<uint64_t>(failureCount()));
    J.endObject();
    OS << '\n';
  };
  if (!CheckPath.empty()) {
    // Diff against the baseline before the final report is written, so
    // the written report's `failures` count includes any regression the
    // gate finds (matching the pre-comparator behavior).
    std::ostringstream Snapshot;
    WriteReport(Snapshot);
    checkAgainst(CheckPath, Snapshot.str());
  }
  if (OutPath == "-") {
    WriteReport(std::cout);
  } else {
    std::ofstream OS(OutPath, std::ios::trunc);
    if (!OS) {
      reportFailure("cannot write report to " + OutPath);
    } else {
      WriteReport(OS);
      std::printf("\nadaptation report: %s\n", OutPath.c_str());
    }
  }
  return exitCode();
}
