//===- bench/table3_benchmarks.cpp - Table 3 ------------------------------===//
///
/// Reproduces Table 3: "Description of the SPECjvm98 and the JavaGrande
/// v2.0 Section 3" benchmarks with the compiled-code percentages the
/// mixed-mode total-time model uses, plus the built size of each kernel.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <cstdio>

using namespace spf::workloads;

int main() {
  std::printf("Table 3: benchmark descriptions\n");
  std::printf("%-12s %-42s %10s %12s\n", "program", "description",
              "compiled%", "heap bytes");
  std::printf("%-12s %-42s %10s %12s\n", "-------", "-----------",
              "---------", "----------");
  WorkloadConfig Cfg; // Full problem size.
  for (const WorkloadSpec &S : allWorkloads()) {
    BuiltWorkload W = S.Build(Cfg);
    std::printf("%-12s %-42s %9.1f%% %12llu\n", S.Name.c_str(),
                S.Description.c_str(), S.CompiledFraction * 100.0,
                static_cast<unsigned long long>(W.Heap->bytesUsed()));
  }
  return 0;
}
