//===- bench/fig9_l2_mpi.cpp - Figure 9 -----------------------------------===//
///
/// Reproduces Figure 9: "L2 cache load MPIs on the Pentium 4" — L2 load
/// miss events per retired instruction, BASELINE vs INTER+INTRA.
///
/// Paper narrative: the algorithm greatly decreases RayTracer's L2 MPI
/// and also decreases db's, Euler's, and mtrt's.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Figure 9: L2 cache load MPIs on the Pentium 4 (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-12s %10s %12s\n", "benchmark", "BASELINE", "INTER+INTRA");
  std::printf("%-12s %10s %12s\n", "---------", "--------", "-----------");

  auto Rows = runAll(machineByNameOrExit("pentium4"), /*WithInter=*/false);
  for (const WorkloadRuns &Row : Rows)
    std::printf("%-12s %10.5f %12.5f\n", Row.Spec->Name.c_str(),
                workloads::perInstruction(Row.Base.Mem.L2LoadMisses,
                                          Row.Base.Retired),
                workloads::perInstruction(Row.Intra.Mem.L2LoadMisses,
                                          Row.Intra.Retired));
  return exitCode();
}
