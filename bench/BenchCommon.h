//===- bench/BenchCommon.h - Shared harness for the figures -----*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure binaries: run the 12 Table 3
/// workloads under the three Section 4 configurations on a machine model
/// and print paper-style rows.
///
/// The problem scale can be reduced for quick runs with SPF_SCALE (e.g.
/// SPF_SCALE=0.1 ./fig6_speedup_p4); the recorded EXPERIMENTS.md numbers
/// use the default 1.0.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_BENCH_BENCHCOMMON_H
#define SPF_BENCH_BENCHCOMMON_H

#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace spf {
namespace bench {

inline double scaleFromEnv() {
  const char *S = std::getenv("SPF_SCALE");
  if (!S)
    return 1.0;
  double V = std::atof(S);
  return V > 0 ? V : 1.0;
}

inline workloads::WorkloadConfig benchConfig() {
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = scaleFromEnv();
  return Cfg;
}

/// Results for one workload under the three configurations.
struct WorkloadRuns {
  const workloads::WorkloadSpec *Spec = nullptr;
  workloads::RunResult Base;
  workloads::RunResult Inter;
  workloads::RunResult Intra;
  bool HasInter = false;
};

/// Runs every Table 3 workload on \p Machine. When \p WithInter is false
/// only BASELINE and INTER+INTRA are run (enough for the MPI figures).
inline std::vector<WorkloadRuns> runAll(const sim::MachineConfig &Machine,
                                        bool WithInter) {
  using namespace workloads;
  std::vector<WorkloadRuns> Rows;
  for (const WorkloadSpec &Spec : allWorkloads()) {
    WorkloadRuns Row;
    Row.Spec = &Spec;

    RunOptions Opt;
    Opt.Machine = Machine;
    Opt.Config = benchConfig();

    Opt.Algo = Algorithm::Baseline;
    Row.Base = runWorkload(Spec, Opt);
    if (WithInter) {
      Opt.Algo = Algorithm::Inter;
      Row.Inter = runWorkload(Spec, Opt);
      Row.HasInter = true;
    }
    Opt.Algo = Algorithm::InterIntra;
    Row.Intra = runWorkload(Spec, Opt);

    if (!Row.Base.SelfCheckOk || !Row.Intra.SelfCheckOk)
      std::fprintf(stderr, "WARNING: %s failed its self-check\n",
                   Spec.Name.c_str());
    if (Row.Intra.ReturnValue != Row.Base.ReturnValue)
      std::fprintf(stderr,
                   "WARNING: %s computed a different result with "
                   "prefetching enabled\n",
                   Spec.Name.c_str());
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

inline double speedup(const WorkloadRuns &Row,
                      const workloads::RunResult &Opt) {
  return workloads::speedupPercent(Row.Base, Opt,
                                   Row.Spec->CompiledFraction);
}

} // namespace bench
} // namespace spf

#endif // SPF_BENCH_BENCHCOMMON_H
