//===- bench/BenchCommon.h - Shared harness for the figures -----*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure binaries: expand the 12 Table 3
/// workloads under the Section 4 configurations into an experiment plan,
/// run it on the parallel driver (src/harness), and print paper-style
/// rows.
///
/// The problem scale can be reduced for quick runs with SPF_SCALE (e.g.
/// SPF_SCALE=0.1 ./fig6_speedup_p4); the recorded EXPERIMENTS.md numbers
/// use the default 1.0. Worker count comes from --jobs N (or SPF_JOBS;
/// default: hardware concurrency). Any workload self-check failure or
/// baseline-vs-prefetch result mismatch makes the binary exit nonzero.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_BENCH_BENCHCOMMON_H
#define SPF_BENCH_BENCHCOMMON_H

#include "harness/Experiment.h"
#include "harness/JsonWriter.h"
#include "harness/Supervisor.h"
#include "harness/ThreadPool.h"
#include "obs/DecisionLog.h"
#include "obs/Obs.h"
#include "obs/StatRegistry.h"
#include "obs/Tracer.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/Process.h"
#include "support/Shutdown.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

namespace spf {
namespace bench {

inline double scaleFromEnv() {
  const char *S = std::getenv("SPF_SCALE");
  if (!S)
    return 1.0;
  double V = std::atof(S);
  return V > 0 ? V : 1.0;
}

inline workloads::WorkloadConfig benchConfig() {
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = scaleFromEnv();
  return Cfg;
}

/// Resolves a machine by registry name (sim::MachineConfig::byName) or
/// exits with ConfigErrorExit (2) listing the known names.
inline sim::MachineConfig machineByNameOrExit(const std::string &Name) {
  if (std::optional<sim::MachineConfig> M = sim::MachineConfig::byName(Name))
    return *M;
  std::string Known;
  for (const std::string &N : sim::MachineConfig::knownNames()) {
    if (!Known.empty())
      Known += ", ";
    Known += N;
  }
  support::envConfigError("--machine", Name.c_str(),
                          "unknown machine; known names: " + Known);
}

/// Loads and validates a machine file (machines/*.json schema, see
/// DESIGN.md) or exits with ConfigErrorExit carrying the diagnostic.
inline sim::MachineConfig machineFromFileOrExit(const std::string &Path) {
  std::string Error;
  if (std::optional<sim::MachineConfig> M =
          sim::MachineConfig::fromFile(Path, &Error))
    return *M;
  support::envConfigError("--machine-file", Path.c_str(), Error);
}

/// Machine-selection flags shared by benches that support them:
///   --machine NAME       a builtin from the registry (repeatable;
///                        aliases like "p4"/"athlon"/"modern" work)
///   --machine-file FILE  a JSON machine description (repeatable)
///   --hw-prefetch KIND   override the hardware prefetcher of every
///                        selected machine: none | stream | rpt
/// Returns the selected machines in flag order; empty when no machine
/// flag was given, in which case callers use their default plan (the
/// --hw-prefetch override still applies to it via \p HwOverride).
inline std::vector<sim::MachineConfig>
machinesFromArgs(int argc, char **argv,
                 std::optional<sim::HwPrefetchKind> *HwOverride = nullptr) {
  std::vector<sim::MachineConfig> Machines;
  std::optional<sim::HwPrefetchKind> Kind;
  auto ParseKind = [](const std::string &V) {
    std::optional<sim::HwPrefetchKind> K = sim::parseHwPrefetchKind(V);
    if (!K)
      support::envConfigError("--hw-prefetch", V.c_str(),
                              "expected none|stream|rpt");
    return *K;
  };
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--machine" && I + 1 < argc)
      Machines.push_back(machineByNameOrExit(argv[++I]));
    else if (A.rfind("--machine=", 0) == 0)
      Machines.push_back(machineByNameOrExit(A.substr(10)));
    else if (A == "--machine-file" && I + 1 < argc)
      Machines.push_back(machineFromFileOrExit(argv[++I]));
    else if (A.rfind("--machine-file=", 0) == 0)
      Machines.push_back(machineFromFileOrExit(A.substr(15)));
    else if (A == "--hw-prefetch" && I + 1 < argc)
      Kind = ParseKind(argv[++I]);
    else if (A.rfind("--hw-prefetch=", 0) == 0)
      Kind = ParseKind(A.substr(14));
  }
  if (Kind)
    for (sim::MachineConfig &M : Machines)
      M.HwPrefetch = *Kind;
  if (HwOverride)
    *HwOverride = Kind;
  return Machines;
}

/// Epoch / GC-variant / governor knobs shared by adaptation-aware
/// benches (bench/adaptation, bench/sweep):
///   --epochs N            epochs per run, >= 1 (or SPF_EPOCHS)
///   --gc-variant NAME     sliding-compact | mark-sweep | address-shuffle |
///                         promotion-order (or SPF_GC_VARIANT)
///   --governor on|off     online prefetch-health governor (or
///                         SPF_GOVERNOR=on|off)
///   --phase-change        shuffle ref arrays at the midpoint boundary
///                         (or SPF_PHASE_CHANGE=1)
/// Invalid values exit with support::ConfigErrorExit (2) before any cell
/// runs.
struct AdaptationKnobs {
  unsigned Epochs = 1;
  vm::GcVariant GcVariant = vm::GcVariant::SlidingCompact;
  bool Governor = false;
  bool PhaseChange = false;

  void applyTo(workloads::RunOptions &Opt) const {
    Opt.Epochs = Epochs;
    Opt.GcVariant = GcVariant;
    Opt.Governor = Governor;
    Opt.PhaseChange = PhaseChange;
  }
};

inline AdaptationKnobs adaptationFromArgs(int argc, char **argv) {
  AdaptationKnobs K;
  auto ParseEpochs = [](const char *Flag, const std::string &V) {
    char *End = nullptr;
    long N = std::strtol(V.c_str(), &End, 10);
    if (!End || *End != '\0' || N < 1 || N > 1000000)
      support::envConfigError(Flag, V.c_str(),
                              "expected an integer epoch count >= 1");
    return static_cast<unsigned>(N);
  };
  auto ParseVariant = [](const char *Flag, const std::string &V) {
    std::optional<vm::GcVariant> G = vm::parseGcVariant(V);
    if (!G)
      support::envConfigError(Flag, V.c_str(),
                              "expected sliding-compact|mark-sweep|"
                              "address-shuffle|promotion-order");
    return *G;
  };
  auto ParseOnOff = [](const char *Flag, const std::string &V) {
    if (V == "on" || V == "1" || V == "true")
      return true;
    if (V == "off" || V == "0" || V == "false")
      return false;
    support::envConfigError(Flag, V.c_str(), "expected on|off");
  };
  if (const char *E = std::getenv("SPF_EPOCHS"))
    K.Epochs = ParseEpochs("SPF_EPOCHS", E);
  if (const char *E = std::getenv("SPF_GC_VARIANT"))
    K.GcVariant = ParseVariant("SPF_GC_VARIANT", E);
  if (const char *E = std::getenv("SPF_GOVERNOR"))
    K.Governor = ParseOnOff("SPF_GOVERNOR", E);
  if (const char *E = std::getenv("SPF_PHASE_CHANGE"))
    K.PhaseChange = ParseOnOff("SPF_PHASE_CHANGE", E);
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--epochs" && I + 1 < argc)
      K.Epochs = ParseEpochs("--epochs", argv[++I]);
    else if (A.rfind("--epochs=", 0) == 0)
      K.Epochs = ParseEpochs("--epochs", A.substr(9));
    else if (A == "--gc-variant" && I + 1 < argc)
      K.GcVariant = ParseVariant("--gc-variant", argv[++I]);
    else if (A.rfind("--gc-variant=", 0) == 0)
      K.GcVariant = ParseVariant("--gc-variant", A.substr(13));
    else if (A == "--governor" && I + 1 < argc)
      K.Governor = ParseOnOff("--governor", argv[++I]);
    else if (A.rfind("--governor=", 0) == 0)
      K.Governor = ParseOnOff("--governor", A.substr(11));
    else if (A == "--phase-change")
      K.PhaseChange = true;
  }
  return K;
}

/// Number of correctness failures recorded so far in this binary.
inline unsigned &failureCount() {
  static unsigned Count = 0;
  return Count;
}

/// Records one correctness failure; the binary will exit nonzero.
inline void reportFailure(const std::string &Msg) {
  ++failureCount();
  std::fprintf(stderr, "FAILURE: %s\n", Msg.c_str());
}

/// Exit code for a sweep that was interrupted (shutdown signal or
/// --sweep-deadline) but wrote a valid partial report. Distinct from 1
/// (correctness failure) and support::ConfigErrorExit (2): scripts can
/// tell "rerun with --resume" from "investigate".
inline constexpr int InterruptedExit = 3;

/// Set when any plan this binary ran was interrupted (see exitCode()).
inline bool &sawInterrupted() {
  static bool Interrupted = false;
  return Interrupted;
}

/// The exit code every bench main() must return: 1 iff any workload
/// self-check failed or prefetching changed a result; InterruptedExit
/// for a clean-but-interrupted partial sweep; 0 otherwise.
inline int exitCode() {
  if (failureCount())
    return 1;
  return sawInterrupted() ? InterruptedExit : 0;
}

/// Folds a finished plan's verdicts into this binary's failure count.
/// Returns true when the plan was fully clean.
inline bool reportPlanFailures(const harness::ExperimentResult &Result) {
  for (const std::string &F : Result.Failures)
    reportFailure(F);
  return Result.ok();
}

/// Worker count: --jobs N / --jobs=N on the command line, else SPF_JOBS,
/// else hardware concurrency.
inline unsigned jobsFromArgs(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    long V = -1;
    if (A == "--jobs" && I + 1 < argc)
      V = std::atol(argv[I + 1]);
    else if (A.rfind("--jobs=", 0) == 0)
      V = std::atol(A.c_str() + 7);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  return harness::defaultJobs();
}

/// Record-once / replay-many knobs from the command line:
///   --no-trace-reuse      interpret every cell directly (A/B baseline)
///   --trace-cache-mb N    in-memory trace budget in MB (0 disables;
///                         default: SPF_TRACE_MB, then 256)
///   --trace-dir DIR       spill evicted traces to DIR and reuse them
///                         across runs
inline harness::TraceOptions traceOptionsFromArgs(int argc, char **argv) {
  harness::TraceOptions T;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    double Mb = -1;
    if (A == "--no-trace-reuse")
      T.Enabled = false;
    else if (A == "--trace-cache-mb" && I + 1 < argc)
      Mb = std::atof(argv[I + 1]);
    else if (A.rfind("--trace-cache-mb=", 0) == 0)
      Mb = std::atof(A.c_str() + 17);
    else if (A == "--trace-dir" && I + 1 < argc)
      T.SpillDir = argv[I + 1];
    else if (A.rfind("--trace-dir=", 0) == 0)
      T.SpillDir = A.substr(12);
    if (Mb >= 0)
      T.BudgetBytes = static_cast<size_t>(Mb * 1024.0 * 1024.0);
  }
  return T;
}

/// Per-binary CLI state shared by every bench main: worker threads,
/// trace reuse, out-of-process isolation, and the run journal. Filled by
/// init(); consumed by runPlanCli(). PlanSeq numbers the runPlanCli
/// calls a binary makes, so the hidden worker protocol can name a cell
/// of any plan in a multi-plan binary.
struct BenchCli {
  int Argc = 0;
  char **Argv = nullptr;
  std::string SelfPath;
  std::optional<harness::WorkerRequest> Worker;
  unsigned Jobs = 0;
  harness::TraceOptions Trace;
  bool Isolate = false;
  uint64_t CellMemMb = 0;
  std::string JournalPath;
  bool Resume = false;
  /// Global wall-clock budget for each plan in seconds (0 = none);
  /// --sweep-deadline / SPF_SWEEP_DEADLINE_S.
  double SweepDeadlineSec = 0.0;
  /// Streaming aggregation sink (--cells-out FILE): one JSONL record per
  /// cell at in-order retirement; also turns on O(jobs)-resident folding.
  std::string CellsOut;
  unsigned PlanSeq = 0;
  // Observability outputs (src/obs). ProfileOut also arms the tracer in
  // supervised workers — they inherit the flag through workerArgv and
  // ship their spans back on the record line.
  std::string ProfileOut;   ///< Chrome trace_event JSON path.
  std::string StatsOut;     ///< Prometheus text dump path.
  std::string DecisionsOut; ///< Compile-decision JSON-lines path.
  bool Explain = false;     ///< Print the per-cell decision summary.
  bool DecisionsOpened = false; ///< First plan truncates, later append.
  /// Timeline sampling cadence (--timeline-every N / SPF_TIMELINE):
  /// cells of timeline-aware benches sample the cycle attribution every
  /// N memory events and the report grows cycle_breakdown / timeline /
  /// top_sites keys. 0 (the default) keeps reports byte-identical to
  /// the pre-timeline format; forced to 0 when observability is
  /// disabled (SPF_OBS=0 runs must stay byte-identical).
  uint64_t TimelineEvery = 0;
};

inline BenchCli &cli() {
  static BenchCli C;
  return C;
}

/// atexit hook (supervisor process only): writes the Chrome trace and
/// the Prometheus stats dump after main() has finished every plan.
inline void flushObservability() {
  BenchCli &C = cli();
  if (!C.ProfileOut.empty() && obs::Tracer::instance().active()) {
    std::ofstream OS(C.ProfileOut, std::ios::trunc);
    if (OS) {
      // Label our lane with the binary name; worker lanes are labeled
      // by pid in Tracer::writeChromeTrace.
      std::string Label = C.SelfPath;
      size_t Slash = Label.find_last_of('/');
      if (Slash != std::string::npos)
        Label = Label.substr(Slash + 1);
      size_t N = obs::Tracer::instance().writeChromeTrace(OS, Label);
      std::fprintf(stderr, "trace: %zu event(s) -> %s\n", N,
                   C.ProfileOut.c_str());
    } else {
      std::fprintf(stderr, "trace: cannot write %s\n", C.ProfileOut.c_str());
    }
  }
  if (!C.StatsOut.empty() && obs::enabled()) {
    std::ofstream OS(C.StatsOut, std::ios::trunc);
    if (OS)
      obs::stats().writeProm(OS);
    else
      std::fprintf(stderr, "stats: cannot write %s\n", C.StatsOut.c_str());
  }
}

/// Parses the shared bench flags. Call first in every bench main:
///   --jobs N            worker threads (or SPF_JOBS)
///   --no-trace-reuse / --trace-cache-mb N / --trace-dir DIR
///   --isolate           run every cell in a supervised worker process
///   --cell-mem-mb N     RLIMIT_AS per worker in MiB (or SPF_CELL_MEM_MB)
///   --journal FILE      append one fsync'd record per finished cell
///   --resume            graft a previous journal instead of re-running
///   --sweep-deadline S  stop admitting cells after S seconds and write
///                       a partial `interrupted` report (exit code 3;
///                       or SPF_SWEEP_DEADLINE_S)
///   --cells-out FILE    stream one JSONL record per cell and keep only
///                       O(jobs) cells resident (streaming aggregation)
/// Also installs the SIGTERM/SIGINT graceful-shutdown handlers in
/// supervisor processes (workers stay killable the default way), and
/// recognizes the hidden worker protocol (--run-cell ...); a worker
/// invocation is dispatched inside runPlanCli, never here.
inline void init(int argc, char **argv) {
  BenchCli &C = cli();
  C.Argc = argc;
  C.Argv = argv;
  C.SelfPath = support::selfExecutablePath(argv[0]);
  C.Worker = harness::parseWorkerRequest(argc, argv);
  C.Jobs = jobsFromArgs(argc, argv);
  C.Trace = traceOptionsFromArgs(argc, argv);
  C.CellMemMb = harness::cellMemMbFromEnv();
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--isolate") {
      C.Isolate = true;
    } else if (A == "--cell-mem-mb" && I + 1 < argc) {
      C.CellMemMb = static_cast<uint64_t>(std::atoll(argv[++I]));
    } else if (A.rfind("--cell-mem-mb=", 0) == 0) {
      C.CellMemMb = static_cast<uint64_t>(std::atoll(A.c_str() + 14));
    } else if (A == "--journal" && I + 1 < argc) {
      C.JournalPath = argv[++I];
    } else if (A.rfind("--journal=", 0) == 0) {
      C.JournalPath = A.substr(10);
    } else if (A == "--resume") {
      C.Resume = true;
    } else if (A == "--sweep-deadline" && I + 1 < argc) {
      C.SweepDeadlineSec = std::atof(argv[++I]);
    } else if (A.rfind("--sweep-deadline=", 0) == 0) {
      C.SweepDeadlineSec = std::atof(A.c_str() + 17);
    } else if (A == "--cells-out" && I + 1 < argc) {
      C.CellsOut = argv[++I];
    } else if (A.rfind("--cells-out=", 0) == 0) {
      C.CellsOut = A.substr(12);
    } else if (A == "--profile-out" && I + 1 < argc) {
      C.ProfileOut = argv[++I];
    } else if (A.rfind("--profile-out=", 0) == 0) {
      C.ProfileOut = A.substr(14);
    } else if (A == "--stats-out" && I + 1 < argc) {
      C.StatsOut = argv[++I];
    } else if (A.rfind("--stats-out=", 0) == 0) {
      C.StatsOut = A.substr(12);
    } else if (A == "--decisions-out" && I + 1 < argc) {
      C.DecisionsOut = argv[++I];
    } else if (A.rfind("--decisions-out=", 0) == 0) {
      C.DecisionsOut = A.substr(16);
    } else if (A == "--timeline-every" && I + 1 < argc) {
      C.TimelineEvery = static_cast<uint64_t>(std::atoll(argv[++I]));
    } else if (A.rfind("--timeline-every=", 0) == 0) {
      C.TimelineEvery = static_cast<uint64_t>(std::atoll(A.c_str() + 17));
    } else if (A == "--explain") {
      C.Explain = true;
    }
  }
  if (C.Resume && C.JournalPath.empty())
    support::envConfigError("--resume", "",
                            "--resume requires --journal FILE");
  if (C.SweepDeadlineSec <= 0)
    C.SweepDeadlineSec = support::sweepDeadlineSecondsFromEnv();
  // Graceful shutdown: supervisors latch SIGTERM/SIGINT and finish with
  // a partial report + exit code 3; workers keep default disposition so
  // a group kill still takes them down instantly.
  if (!C.Worker)
    support::installShutdownHandlers();
  if (C.ProfileOut.empty())
    if (const char *E = std::getenv("SPF_TRACE_OUT"))
      C.ProfileOut = E;
  if (C.StatsOut.empty())
    if (const char *E = std::getenv("SPF_STATS_OUT"))
      C.StatsOut = E;
  if (C.DecisionsOut.empty())
    if (const char *E = std::getenv("SPF_DECISIONS_OUT"))
      C.DecisionsOut = E;
  if (!C.TimelineEvery)
    C.TimelineEvery = support::envU64("SPF_TIMELINE", 0);
  // SPF_OBS=0 (or an -DSPF_OBSERVABILITY=OFF build) must produce
  // byte-identical reports: the timeline facet is an observability
  // feature, so it is hard-disabled along with the rest of obs.
  if (!obs::enabled())
    C.TimelineEvery = 0;
  // Arm the tracer in supervisors AND workers (workers inherit the flag
  // via workerArgv; their spans travel back on the record line). Only
  // the supervisor flushes files: workers _Exit before atexit runs, and
  // the hook is not registered for them anyway.
  if (!C.ProfileOut.empty() && obs::enabled())
    obs::Tracer::instance().enable();
  if (!C.Worker && (!C.ProfileOut.empty() || !C.StatsOut.empty()))
    std::atexit(flushObservability);
}

/// Emits the per-cell compile-decision log for one finished plan: the
/// human summary on stdout (--explain) and one JSON line per decision
/// (--decisions-out), each wrapped with its cell's identity so lines
/// from multi-plan binaries stay attributable.
inline void emitDecisions(const harness::ExperimentPlan &Plan,
                          const harness::ExperimentResult &Result) {
  BenchCli &C = cli();
  if (!C.Explain && C.DecisionsOut.empty())
    return;
  std::ofstream DS;
  if (!C.DecisionsOut.empty()) {
    DS.open(C.DecisionsOut,
            C.DecisionsOpened ? std::ios::app : std::ios::trunc);
    C.DecisionsOpened = true;
    if (!DS)
      std::fprintf(stderr, "decisions: cannot write %s\n",
                   C.DecisionsOut.c_str());
  }
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const harness::ExperimentCell &Cell = Plan.cells()[I];
    const std::vector<obs::DecisionEvent> &Decisions =
        Result.Cells[I].Run.Decisions;
    if (Decisions.empty())
      continue;
    if (C.Explain) {
      std::printf("\nexplain: %s [%s, %s] — %zu decision(s)\n",
                  Cell.Spec->Name.c_str(),
                  workloads::algorithmName(Cell.Opt.Algo),
                  Cell.Opt.Machine.Name.c_str(), Decisions.size());
      for (const obs::DecisionEvent &D : Decisions)
        std::printf("  %s\n", obs::formatDecision(D).c_str());
    }
    if (DS) {
      for (const obs::DecisionEvent &D : Decisions) {
        harness::JsonWriter J(DS);
        J.beginObject();
        J.key("cell").value(static_cast<uint64_t>(I));
        if (!Cell.Group.empty())
          J.key("group").value(Cell.Group);
        J.key("workload").value(Cell.Spec->Name);
        J.key("algorithm").value(workloads::algorithmName(Cell.Opt.Algo));
        J.key("machine").value(Cell.Opt.Machine.Name);
        J.key("decision");
        obs::writeDecisionJson(J, D);
        J.endObject();
        DS << '\n';
      }
    }
  }
}

/// Runs \p Plan under the configuration init() parsed. In a worker
/// invocation targeting this plan, runs the requested cell and exits;
/// for earlier plans of a multi-plan binary it fabricates empty results
/// (the worker's stdout goes to /dev/null, so the skipped plans' tables
/// print into the void) so control flow reaches the target plan without
/// executing anything.
inline harness::ExperimentResult
runPlanCli(const harness::ExperimentPlan &Plan) {
  BenchCli &C = cli();
  const unsigned Seq = C.PlanSeq++;
  if (C.Worker) {
    if (C.Worker->PlanSeq == Seq)
      harness::runCellWorker(Plan, *C.Worker, C.Trace); // Does not return.
    harness::ExperimentResult R;
    R.Cells.resize(Plan.size());
    for (harness::CellResult &Cell : R.Cells) {
      Cell.Ran = true;
      Cell.Attempts = 1;
    }
    return R;
  }

  harness::RunPlanOptions Opts;
  Opts.Trace = C.Trace;
  if (C.Isolate) {
    Opts.Isolate.Enabled = true;
    Opts.Isolate.CellMemMb = C.CellMemMb;
    const std::string Self = C.SelfPath;
    const int Argc = C.Argc;
    char **const Argv = C.Argv;
    Opts.Isolate.WorkerCommand = [Self, Argc, Argv,
                                  Seq](unsigned Cell, unsigned Attempt) {
      return harness::workerArgv(Self, Argc, Argv, Seq, Cell, Attempt);
    };
  }
  if (!C.JournalPath.empty()) {
    // Multi-plan binaries journal each plan separately.
    Opts.Journal.Path =
        Seq == 0 ? C.JournalPath
                 : C.JournalPath + ".plan" + std::to_string(Seq);
    Opts.Journal.Resume = C.Resume;
  }
  // Resource governor: every bench supervisor honors SIGTERM/SIGINT
  // (handlers installed in init) and the sweep deadline.
  Opts.Governor.Graceful = true;
  Opts.Governor.SweepDeadlineSec = C.SweepDeadlineSec;
  if (!C.CellsOut.empty()) {
    Opts.Stream.Enabled = true;
    Opts.Stream.CellsOutPath =
        Seq == 0 ? C.CellsOut : C.CellsOut + ".plan" + std::to_string(Seq);
  }
  harness::ExperimentResult Result = harness::runPlan(Plan, C.Jobs, Opts);
  if (Result.Interrupted) {
    sawInterrupted() = true;
    std::fprintf(stderr,
                 "interrupted: %s — %u cell(s) skipped; partial report is "
                 "valid%s\n",
                 Result.InterruptReason.c_str(), Result.CellsSkipped,
                 Result.JournalPath.empty()
                     ? ""
                     : ", rerun with --resume to complete the sweep");
  }
  emitDecisions(Plan, Result);
  return Result;
}

/// Writes the JSON report for one finished plan to \p Path ("-" =
/// stdout). File writes are one of the named ENOSPC/EIO injection points
/// (disk-write site): the first attempt runs under a fault scope and is
/// retried once *outside* it, so injected failures always recover while
/// real persistent failures still surface as a Failure at the caller.
inline bool writeReportTo(const std::string &Path,
                          const harness::ExperimentPlan &Plan,
                          const harness::ExperimentResult &Result,
                          double Scale, unsigned Jobs) {
  if (Path == "-") {
    harness::writeJsonReport(std::cout, Plan, Result, Scale, Jobs);
    return true;
  }
  support::FaultInjector Injector(support::FaultConfig::fromEnv(),
                                  /*StreamSalt=*/0x5e9075ULL);
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    bool Injected = false;
    if (Attempt == 0) {
      support::FaultScope Scope(Injector);
      Injected = SPF_FAULT_POINT(support::FaultSite::DiskWrite);
    }
    if (!Injected) {
      std::ofstream OS(Path, std::ios::trunc);
      if (OS) {
        harness::writeJsonReport(OS, Plan, Result, Scale, Jobs);
        OS.flush();
        if (OS)
          return true;
      }
    }
    if (obs::enabled())
      obs::stats().counter("spf_report_write_failures_total").inc();
    std::fprintf(stderr, "report: write to %s failed%s\n", Path.c_str(),
                 Attempt == 0 ? ", retrying" : "");
  }
  return false;
}

/// Results for one workload under the three configurations.
struct WorkloadRuns {
  const workloads::WorkloadSpec *Spec = nullptr;
  workloads::RunResult Base;
  workloads::RunResult Inter;
  workloads::RunResult Intra;
  bool HasInter = false;
};

/// Appends the full Table 3 sweep on \p Machine to \p Plan. When
/// \p WithInter is false only BASELINE and INTER+INTRA are planned
/// (enough for the MPI figures).
inline std::vector<unsigned> planAll(harness::ExperimentPlan &Plan,
                                     const sim::MachineConfig &Machine,
                                     bool WithInter,
                                     const std::string &Group = "") {
  using namespace workloads;
  std::vector<const WorkloadSpec *> Specs;
  for (const WorkloadSpec &Spec : allWorkloads())
    Specs.push_back(&Spec);
  std::vector<Algorithm> Algos{Algorithm::Baseline};
  if (WithInter)
    Algos.push_back(Algorithm::Inter);
  Algos.push_back(Algorithm::InterIntra);
  return Plan.addSweep(Specs, Algos, {Machine}, benchConfig(), Group);
}

/// Folds the cells planned by planAll back into per-workload rows.
/// \p First is the index of the sweep's first cell in \p Result.
inline std::vector<WorkloadRuns>
collectAll(const harness::ExperimentResult &Result, bool WithInter,
           unsigned First = 0) {
  using namespace workloads;
  std::vector<WorkloadRuns> Rows;
  unsigned PerWorkload = WithInter ? 3 : 2;
  unsigned I = First;
  for (const WorkloadSpec &Spec : allWorkloads()) {
    WorkloadRuns Row;
    Row.Spec = &Spec;
    Row.Base = Result.run(I);
    if (WithInter) {
      Row.Inter = Result.run(I + 1);
      Row.HasInter = true;
    }
    Row.Intra = Result.run(I + PerWorkload - 1);
    Rows.push_back(std::move(Row));
    I += PerWorkload;
  }
  return Rows;
}

/// Runs every Table 3 workload on \p Machine under the configuration
/// init() parsed (jobs, trace reuse, isolation, journal). Self-check
/// failures and baseline-vs-prefetch mismatches are recorded via
/// reportFailure(), so callers finish with `return bench::exitCode();`.
inline std::vector<WorkloadRuns> runAll(const sim::MachineConfig &Machine,
                                        bool WithInter) {
  harness::ExperimentPlan Plan;
  planAll(Plan, Machine, WithInter);
  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);
  return collectAll(Result, WithInter);
}

inline double speedup(const WorkloadRuns &Row,
                      const workloads::RunResult &Opt) {
  return workloads::speedupPercent(Row.Base, Opt,
                                   Row.Spec->CompiledFraction);
}

} // namespace bench
} // namespace spf

#endif // SPF_BENCH_BENCHCOMMON_H
