//===- bench/comparison_greedy.cpp - Stride vs greedy prefetching ---------===//
///
/// The paper's Section 5 positions stride prefetching against Luk &
/// Mowry's greedy prefetching for recursive data structures. This bench
/// runs both on complementary programs:
///
///  * javac / jack — pointer chases with no allocation-order regularity:
///    stride discovery finds nothing, greedy prefetching has the pointer
///    in hand;
///  * db / Euler — array-based programs with stride patterns: greedy
///    finds no recurrence, stride prefetching shines.
///
/// (Pentium 4 model; total-time speedups under the mixed-mode model.)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/GreedyPrefetch.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

namespace {

/// Runs a workload with greedy prefetching applied to its hot methods
/// instead of the stride pass.
RunResult runGreedy(const WorkloadSpec &Spec, unsigned &Emitted) {
  BuiltWorkload W = Spec.Build(benchConfig());
  Emitted = 0;
  // Same baseline pipeline as every other configuration, with greedy
  // prefetching in place of the stride pass.
  jit::CompileManager::Options CM;
  CM.EnablePrefetch = false;
  jit::CompileManager Jit(*W.Heap, CM);
  for (const CompileUnit &CU : W.CompileUnits) {
    Jit.compile(CU.M, CU.Args);
    if (CU.M->name().rfind("pop.", 0) == 0)
      continue;
    core::GreedyResult R = core::runGreedyPrefetch(CU.M);
    Emitted += R.Prefetches;
  }

  sim::MemorySystem Mem(machineByNameOrExit("pentium4"));
  exec::Interpreter Interp(*W.Heap, Mem, &W.Roots);
  RunResult Result;
  Result.ReturnValue = Interp.run(W.Entry, W.EntryArgs);
  Result.CompiledCycles = Mem.cycles();
  Result.Retired = Interp.stats().Retired;
  Result.Mem = Mem.stats();
  if (W.Expected)
    Result.SelfCheckOk = Result.ReturnValue == *W.Expected;
  return Result;
}

} // namespace

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Stride vs greedy prefetching (Pentium 4, scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-10s %12s %12s %10s %10s\n", "benchmark", "stride",
              "greedy", "stride pf", "greedy pf");

  // Baseline + stride cells run on the shared driver; the greedy pipeline
  // is bespoke (it bypasses the stride pass) and stays serial below.
  const char *Names[] = {"javac", "jack", "db", "Euler"};
  harness::ExperimentPlan Plan;
  std::vector<const WorkloadSpec *> Specs;
  for (const char *Name : Names)
    Specs.push_back(findWorkload(Name));
  Plan.addSweep(Specs, {Algorithm::Baseline, Algorithm::InterIntra},
                {machineByNameOrExit("pentium4")}, benchConfig(),
                "comparison:greedy");
  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);

  unsigned I = 0;
  for (const char *Name : Names) {
    const WorkloadSpec *Spec = findWorkload(Name);
    const RunResult &RBase = Result.run(I++);
    const RunResult &RStride = Result.run(I++);

    unsigned GreedyEmitted = 0;
    RunResult RGreedy = runGreedy(*Spec, GreedyEmitted);
    if (!RGreedy.SelfCheckOk)
      reportFailure(std::string(Name) +
                    " [greedy]: workload self-check failed");
    if (RGreedy.ReturnValue != RBase.ReturnValue)
      reportFailure(std::string(Name) +
                    " [greedy]: computed a different result than its "
                    "baseline run");

    std::printf("%-10s %+11.1f%% %+11.1f%% %10u %10u\n", Name,
                speedup({Spec, RBase, RBase, RStride, false}, RStride),
                speedup({Spec, RBase, RBase, RGreedy, false}, RGreedy),
                RStride.Prefetch.CodeGen.Prefetches +
                    RStride.Prefetch.CodeGen.SpecLoads,
                GreedyEmitted);
  }
  std::printf("\nThe two techniques are complementary, as Section 5 "
              "suggests: \"the two approaches can work effectively "
              "together.\"\n");
  return exitCode();
}
