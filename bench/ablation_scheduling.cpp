//===- bench/ablation_scheduling.cpp - Scheduling distance sweep ----------===//
///
/// Ablation for the paper's fixed scheduling distance: "We fixed the
/// scheduling distance as one iteration for both inter- and intra-
/// iteration stride prefetching because our primary concern was not to
/// optimally tune up both kinds" and "we can reduce [Euler's] L2 cache
/// load MPI more by a longer scheduling distance" (Section 4.2).
///
/// Sweeps c = 1..8 on Euler (inter-pattern-dominated) and db (dereference/
/// intra-dominated) on the Pentium 4.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Ablation: scheduling distance c (Pentium 4, scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-10s %4s %12s %12s %10s\n", "benchmark", "c", "cycles",
              "L2 misses", "speedup");

  const unsigned Distances[] = {1u, 2u, 4u, 8u};
  harness::ExperimentPlan Plan;
  for (const char *Name : {"Euler", "db"}) {
    const WorkloadSpec *Spec = findWorkload(Name);

    harness::ExperimentCell Base;
    Base.Group = "ablation:scheduling";
    Base.Spec = Spec;
    Base.Opt.Config = benchConfig();
    Base.Opt.Algo = Algorithm::Baseline;
    unsigned BaseIdx = Plan.add(std::move(Base));

    for (unsigned C : Distances) {
      harness::ExperimentCell Cell;
      Cell.Group = "ablation:scheduling";
      Cell.Spec = Spec;
      Cell.Opt.Config = benchConfig();
      Cell.Opt.Algo = Algorithm::InterIntra;
      Cell.Opt.TunePass = [C](core::PrefetchPassOptions &P) {
        P.Planner.ScheduleDistance = C;
      };
      Cell.CheckAgainst = BaseIdx;
      Plan.add(std::move(Cell));
    }
  }
  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);

  unsigned I = 0;
  for (const char *Name : {"Euler", "db"}) {
    const WorkloadSpec *Spec = findWorkload(Name);
    const RunResult &RBase = Result.run(I++);
    for (unsigned C : Distances) {
      const RunResult &R = Result.run(I++);
      std::printf("%-10s %4u %12llu %12llu %+9.1f%%\n", Name, C,
                  static_cast<unsigned long long>(R.CompiledCycles),
                  static_cast<unsigned long long>(R.Mem.L2LoadMisses),
                  speedupPercent(RBase, R, Spec->CompiledFraction));
    }
  }
  return exitCode();
}
