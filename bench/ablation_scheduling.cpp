//===- bench/ablation_scheduling.cpp - Scheduling distance sweep ----------===//
///
/// Ablation for the paper's fixed scheduling distance: "We fixed the
/// scheduling distance as one iteration for both inter- and intra-
/// iteration stride prefetching because our primary concern was not to
/// optimally tune up both kinds" and "we can reduce [Euler's] L2 cache
/// load MPI more by a longer scheduling distance" (Section 4.2).
///
/// Sweeps c = 1..8 on Euler (inter-pattern-dominated) and db (dereference/
/// intra-dominated) on the Pentium 4.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

int main() {
  std::printf("Ablation: scheduling distance c (Pentium 4, scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-10s %4s %12s %12s %10s\n", "benchmark", "c", "cycles",
              "L2 misses", "speedup");

  for (const char *Name : {"Euler", "db"}) {
    const WorkloadSpec *Spec = findWorkload(Name);
    RunOptions Base;
    Base.Config = benchConfig();
    Base.Algo = Algorithm::Baseline;
    RunResult RBase = runWorkload(*Spec, Base);

    for (unsigned C : {1u, 2u, 4u, 8u}) {
      RunOptions Opt;
      Opt.Config = benchConfig();
      Opt.Algo = Algorithm::InterIntra;
      Opt.TunePass = [C](core::PrefetchPassOptions &P) {
        P.Planner.ScheduleDistance = C;
      };
      RunResult R = runWorkload(*Spec, Opt);
      std::printf("%-10s %4u %12llu %12llu %+9.1f%%\n", Name, C,
                  static_cast<unsigned long long>(R.CompiledCycles),
                  static_cast<unsigned long long>(R.Mem.L2LoadMisses),
                  speedupPercent(RBase, R, Spec->CompiledFraction));
    }
  }
  return 0;
}
