//===- bench/sweep.cpp - The whole evaluation in one shared pool ----------===//
///
/// Runs every cell behind Figures 6-10 — 12 workloads x {BASELINE, INTER,
/// INTER+INTRA} x {Pentium 4, Athlon MP} — as one experiment plan on one
/// worker pool, prints the paper-style tables, and writes a
/// machine-readable JSON report (format: DESIGN.md, "JSON report").
///
/// Usage:
///   sweep [--jobs N] [--json FILE] [--workloads a,b,c]
///         [--machine NAME] [--machine-file FILE] [--hw-prefetch KIND]
///         [--epochs N] [--gc-variant KIND] [--governor on|off]
///         [--phase-change]
///         [--no-trace-reuse] [--trace-cache-mb N] [--trace-dir DIR]
///         [--isolate] [--cell-mem-mb N] [--journal FILE] [--resume]
///         [--profile-out FILE] [--stats-out FILE]
///         [--decisions-out FILE] [--explain]
///   sweep --throughput [--throughput-json FILE] [--throughput-secs S]
///
///   --jobs N          worker threads (default: SPF_JOBS, then hardware
///                     concurrency); results are bit-identical for any N
///   --json FILE       report path (default: sweep_report.json; "-" for
///                     stdout)
///   --workloads CSV   restrict to a comma-separated subset of Table 3
///                     workload names
///   --machine NAME    replace the default Pentium4+AthlonMP plan with a
///                     prefetch-source sweep (none/sw/hw/combined per
///                     workload) on the named registry machine
///                     (pentium4, athlonmp, modern3l; repeatable)
///   --machine-file F  same, for a machine described by a JSON file
///                     (machines/*.json schema, see DESIGN.md; repeatable
///                     and combinable with --machine)
///   --hw-prefetch K   override the hardware prefetcher kind of every
///                     selected machine (none | stream | rpt); with no
///                     --machine/--machine-file it applies to the default
///                     Pentium4+AthlonMP plan
///   --epochs N        run every cell's entry method N times with a full
///                     GC at each epoch boundary (default 1 = classic
///                     single-shot run; or SPF_EPOCHS)
///   --gc-variant K    GC perturbation variant at epoch boundaries:
///                     sliding-compact (default) | mark-sweep |
///                     address-shuffle | promotion-order (or
///                     SPF_GC_VARIANT)
///   --governor on|off enable the online prefetch-health governor, which
///                     re-decides each prefetch site (keep / retune /
///                     quarantine / re-inspect) at epoch boundaries;
///                     governed cells never reuse recorded traces (or
///                     SPF_GOVERNOR)
///   --phase-change    shuffle every Ref array's element order at the
///                     middle epoch boundary, breaking inspected stride
///                     patterns mid-run (or SPF_PHASE_CHANGE=1)
///   --no-trace-reuse  interpret every cell directly instead of replaying
///                     recorded access traces (statistics are identical
///                     either way; this is the A/B baseline CI diffs
///                     against)
///   --trace-cache-mb N  in-memory trace cache budget in MB (0 disables;
///                     default: SPF_TRACE_MB, then 256)
///   --trace-dir DIR   spill evicted traces to DIR; later runs replay
///                     them across process boundaries
///   --isolate         run every cell in a supervised worker process with
///                     hard rlimits; crashes become per-cell quarantine
///                     entries instead of killing the sweep (statistics
///                     stay bit-identical to the in-process mode)
///   --cell-mem-mb N   RLIMIT_AS per worker process in MiB (default:
///                     SPF_CELL_MEM_MB; 0 = unlimited)
///   --journal FILE    append one fsync'd JSON line per finished cell, so
///                     a killed sweep can be resumed
///   --resume          graft results recorded in --journal FILE and only
///                     run the cells it is missing
///   --sweep-deadline S  stop admitting cells after S seconds of wall
///                     clock, finish/kill the in-flight ones against the
///                     SPF_SHUTDOWN_GRACE_S window, and write a partial
///                     report marked "interrupted" (exit code 3; with
///                     --journal, --resume completes it byte-identically;
///                     or SPF_SWEEP_DEADLINE_S)
///   --cells-out FILE  stream one JSONL record per cell at in-order
///                     retirement and fold per-cell site tables as they
///                     retire, so peak resident cells is O(jobs) instead
///                     of O(plan); the JSON report stays bit-identical
///   --profile-out F   write a Chrome trace_event JSON timeline of the
///                     whole sweep (open in chrome://tracing or
///                     ui.perfetto.dev); under --isolate, worker
///                     processes appear as their own lanes (or
///                     SPF_TRACE_OUT)
///   --stats-out F     write the harness counters/histograms in
///                     Prometheus text format (or SPF_STATS_OUT)
///   --decisions-out F write one JSON line per compile decision —
///                     which strides inspection found, what the planner
///                     pruned, why loops degraded (or SPF_DECISIONS_OUT)
///   --explain         print the per-cell compile-decision summary
///   --throughput      replay-throughput benchmark instead of the sweep:
///                     records the standard plan's traces once, then
///                     measures replay cells/sec and events/sec under
///                     per-event dispatch (the pre-batching baseline),
///                     batched consume() dispatch, and spill reload via
///                     heap read vs zero-copy mmap — verifying along the
///                     way that all modes produce bit-identical stats
///   --throughput-json F  where to write the result JSON (default:
///                     BENCH_sweep_throughput.json; the committed copy
///                     at the repo root is CI's regression baseline)
///   --throughput-secs S  minimum measured seconds per mode (default 1)
///   SPF_OBS=0         disable all observability at run time; report
///                     statistics are bit-identical either way
///   SPF_SCALE=0.1     reduced problem scale, as for every bench binary
///   SPF_TRACE_MB=N    default trace cache budget in MB
///   SPF_TRACE_DIR_MB=N  byte budget for the --trace-dir spill directory
///                     in MB; least-recently-used spill files are evicted
///                     to stay under it (0 = unlimited)
///   SPF_FAULTS=...    chaos mode: seeded fault injection (DESIGN.md,
///                     "Failure model"); quarantined cells are reported
///                     but injected transients do not fail the run —
///                     fault injection also disables trace reuse
///   SPF_CELL_TIMEOUT=S  per-cell wall-clock watchdog in seconds
///   SPF_CELL_MEM_MB=N   default per-worker RLIMIT_AS in MiB
///   SPF_NO_BACKOFF=1    disable the retry backoff delay (tests/CI)
///
/// Exit code is 1 when any workload self-check fails or prefetching
/// changes a result, and 3 when the sweep was interrupted (SIGTERM,
/// SIGINT, or --sweep-deadline) but wrote a valid partial report. The
/// undocumented --inject-self-check-failure flag adds a deliberately
/// failing cell so CI can regression-test the nonzero-exit path.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <unistd.h>

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

namespace {

/// The Table 3 workloads restricted to \p Csv (all of them when empty).
std::vector<const WorkloadSpec *> selectWorkloads(const std::string &Csv) {
  std::vector<const WorkloadSpec *> Specs;
  if (Csv.empty()) {
    for (const WorkloadSpec &S : allWorkloads())
      Specs.push_back(&S);
    return Specs;
  }
  std::stringstream SS(Csv);
  std::string Name;
  while (std::getline(SS, Name, ',')) {
    if (const WorkloadSpec *S = findWorkload(Name))
      Specs.push_back(S);
    else
      reportFailure("unknown workload '" + Name + "'");
  }
  return Specs;
}

/// Per-workload rows of one machine's block of the plan.
std::vector<WorkloadRuns>
collectBlock(const harness::ExperimentResult &Result,
             const std::vector<const WorkloadSpec *> &Specs,
             unsigned First) {
  std::vector<WorkloadRuns> Rows;
  unsigned I = First;
  for (const WorkloadSpec *Spec : Specs) {
    WorkloadRuns Row;
    Row.Spec = Spec;
    Row.Base = Result.run(I);
    Row.Inter = Result.run(I + 1);
    Row.Intra = Result.run(I + 2);
    Row.HasInter = true;
    Rows.push_back(std::move(Row));
    I += 3;
  }
  return Rows;
}

void printSpeedups(const char *Title,
                   const std::vector<WorkloadRuns> &Rows) {
  std::printf("\n%s\n", Title);
  std::printf("%-12s %10s %12s\n", "benchmark", "INTER", "INTER+INTRA");
  for (const WorkloadRuns &Row : Rows)
    std::printf("%-12s %9.1f%% %11.1f%%\n", Row.Spec->Name.c_str(),
                speedup(Row, Row.Inter), speedup(Row, Row.Intra));
}

/// Per-cell wall-clock accounting: which cells interpreted (and how
/// long), which replayed a recorded trace, plus a cache summary line.
void printCellTimings(const harness::ExperimentPlan &Plan,
                      const harness::ExperimentResult &Result) {
  std::printf("\nPer-cell wall clock (record-once / replay-many)\n");
  std::printf("%-12s %-9s %-12s %12s %12s\n", "benchmark", "machine",
              "algorithm", "interpret_us", "replay_us");
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const harness::ExperimentCell &C = Plan.cells()[I];
    const workloads::RunResult &R = Result.run(I);
    if (!Result.Cells[I].Ran)
      continue;
    std::printf("%-12s %-9s %-12s %12.0f %12.0f%s\n", C.Spec->Name.c_str(),
                C.Opt.Machine.Name.c_str(),
                workloads::algorithmName(C.Opt.Algo), R.InterpretUs,
                R.ReplayUs, R.Replayed ? "  (replayed)" : "");
  }

  const harness::TraceCacheStats &T = Result.Trace;
  uint64_t Lookups = T.Hits + T.Misses;
  if (!Result.TraceEnabled) {
    std::printf("trace cache: disabled\n");
    return;
  }
  std::printf("trace cache: %llu/%llu hits (%.0f%%), %llu inserts, "
              "%llu evictions, %llu overflows, %llu spilled, "
              "%.1f/%.0f MB used\n",
              static_cast<unsigned long long>(T.Hits),
              static_cast<unsigned long long>(Lookups),
              Lookups ? 100.0 * static_cast<double>(T.Hits) /
                            static_cast<double>(Lookups)
                      : 0.0,
              static_cast<unsigned long long>(T.Inserts),
              static_cast<unsigned long long>(T.Evictions),
              static_cast<unsigned long long>(T.Overflows),
              static_cast<unsigned long long>(T.SpillStores),
              static_cast<double>(Result.TraceBytesInUse) / (1 << 20),
              static_cast<double>(Result.TraceBudgetBytes) / (1 << 20));
}

void printMpi(const char *Title, const std::vector<WorkloadRuns> &Rows,
              uint64_t sim::MemoryStats::*Counter) {
  std::printf("\n%s\n", Title);
  std::printf("%-12s %10s %12s\n", "benchmark", "BASELINE", "INTER+INTRA");
  for (const WorkloadRuns &Row : Rows)
    std::printf("%-12s %10.5f %12.5f\n", Row.Spec->Name.c_str(),
                perInstruction(Row.Base.Mem.*Counter, Row.Base.Retired),
                perInstruction(Row.Intra.Mem.*Counter, Row.Intra.Retired));
}

/// One machine's block of a prefetch-source sweep: cycles per mode, with
/// the speedup each prefetch source buys over the unprefetched baseline.
void printModeTable(const sim::MachineConfig &M,
                    const std::vector<const WorkloadSpec *> &Specs,
                    const std::vector<harness::PrefetchSources> &Modes,
                    const harness::ExperimentResult &Result,
                    unsigned First) {
  std::printf("\nPrefetch sources on %s (%zu levels, hw prefetcher: %s, "
              "tlb: %s): cycles [speedup vs none]\n",
              M.Name.c_str(), M.numLevels(),
              sim::hwPrefetchKindName(M.HwPrefetch), sim::tlbWalkName(M.Walk));
  std::printf("%-12s", "benchmark");
  for (harness::PrefetchSources Mode : Modes)
    std::printf(" %18s", harness::prefetchSourcesName(Mode));
  std::printf("\n");
  unsigned I = First;
  for (const WorkloadSpec *Spec : Specs) {
    std::printf("%-12s", Spec->Name.c_str());
    uint64_t NoneCycles = 0;
    for (size_t K = 0; K != Modes.size(); ++K) {
      const RunResult &R = Result.run(I + static_cast<unsigned>(K));
      if (Modes[K] == harness::PrefetchSources::None)
        NoneCycles = R.CompiledCycles;
      if (NoneCycles && Modes[K] != harness::PrefetchSources::None &&
          R.CompiledCycles) {
        double Pct = 100.0 * (static_cast<double>(NoneCycles) /
                                  static_cast<double>(R.CompiledCycles) -
                              1.0);
        std::printf(" %11llu %+5.1f%%",
                    static_cast<unsigned long long>(R.CompiledCycles), Pct);
      } else {
        std::printf(" %11llu       ",
                    static_cast<unsigned long long>(R.CompiledCycles));
      }
    }
    std::printf("\n");
    I += static_cast<unsigned>(Modes.size());
  }
}

// ---------------------------------------------------------------------------
// --throughput: how fast is replay-many? (ROADMAP item 5's trajectory)
// ---------------------------------------------------------------------------

/// One recorded trace shared by every cell with its signature.
struct RecordedTrace {
  trace::TraceBuffer Buf;
  RunResult ExecSide;
};

/// One cell of the standard 12x3x2 plan, pointing at its trace.
struct ThroughputCell {
  RunOptions Opts;
  const RecordedTrace *Trace = nullptr;
  std::string Sig;
};

/// What one cell's replay must reproduce, bit for bit, in every mode.
struct CellReference {
  uint64_t Cycles = 0;
  sim::MemoryStats Mem;
  std::vector<sim::SiteStats> Sites;
};

struct ModeResult {
  uint64_t Passes = 0;
  double Seconds = 0;
  double CellsPerSec = 0;
  double EventsPerSec = 0;
};

/// Runs \p Pass (one full sweep over all cells) repeatedly until
/// \p MinSecs of wall clock have been measured, and converts to rates.
template <typename PassFn>
ModeResult measureMode(const char *Name, size_t Cells, uint64_t EventsPerPass,
                       double MinSecs, PassFn Pass) {
  std::string SpanName = std::string("throughput-") + Name;
  obs::Span Span(SpanName.c_str(), "bench");
  ModeResult R;
  auto Start = std::chrono::steady_clock::now();
  do {
    Pass();
    ++R.Passes;
    R.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  } while (R.Seconds < MinSecs);
  R.CellsPerSec =
      static_cast<double>(R.Passes * Cells) / R.Seconds;
  R.EventsPerSec =
      static_cast<double>(R.Passes * EventsPerPass) / R.Seconds;
  std::printf("  %-10s %6llu pass(es) %8.2f s %12.1f cells/s %14.3e events/s\n",
              Name, static_cast<unsigned long long>(R.Passes), R.Seconds,
              R.CellsPerSec, R.EventsPerSec);
  return R;
}

void writeModeJson(harness::JsonWriter &J, const char *Name,
                   const ModeResult &R) {
  J.key(Name);
  J.beginObject();
  J.key("passes").value(R.Passes);
  J.key("seconds").value(R.Seconds);
  J.key("cells_per_sec").value(R.CellsPerSec);
  J.key("events_per_sec").value(R.EventsPerSec);
  J.endObject();
}

/// Compares one replayed MemorySystem against the cell's reference.
bool matchesReference(const sim::MemorySystem &Mem, const CellReference &Ref) {
  return Mem.cycles() == Ref.Cycles && Mem.stats() == Ref.Mem &&
         Mem.siteStats() == Ref.Sites;
}

int runThroughput(const std::vector<const WorkloadSpec *> &Specs,
                  const std::string &JsonPath, double MinSecs) {
  const std::vector<Algorithm> Algos{
      Algorithm::Baseline, Algorithm::Inter, Algorithm::InterIntra};
  const std::vector<sim::MachineConfig> Machines{
      *sim::MachineConfig::byName("pentium4"),
      *sim::MachineConfig::byName("athlonmp")};

  // Phase 1: record one trace per unique execution signature (exactly
  // what the sweep's record-once path does), and spill them through a
  // private TraceCache directory for the spill-reload modes.
  std::string SpillDir =
      (std::filesystem::temp_directory_path() /
       ("spf-throughput-" + std::to_string(::getpid())))
          .string();
  std::map<std::string, std::unique_ptr<RecordedTrace>> Traces;
  std::vector<ThroughputCell> Cells;
  {
    obs::Span Span("throughput-record", "bench");
    harness::TraceCache Writer(0, SpillDir);
    for (const sim::MachineConfig &Machine : Machines)
      for (const WorkloadSpec *Spec : Specs)
        for (Algorithm Algo : Algos) {
          ThroughputCell Cell;
          Cell.Opts.Machine = Machine;
          Cell.Opts.Algo = Algo;
          Cell.Opts.Config = benchConfig();
          Cell.Sig = executionSignature(*Spec, Cell.Opts);
          auto It = Traces.find(Cell.Sig);
          if (It == Traces.end()) {
            auto T = std::make_unique<RecordedTrace>();
            Cell.Opts.Record = &T->Buf;
            T->ExecSide = runWorkload(*Spec, Cell.Opts);
            Cell.Opts.Record = nullptr;
            if (!T->ExecSide.SelfCheckOk)
              reportFailure("self-check failed recording " + Cell.Sig);
            Writer.insert(Cell.Sig, T->Buf, T->ExecSide);
            It = Traces.emplace(Cell.Sig, std::move(T)).first;
          }
          Cell.Trace = It->second.get();
          Cells.push_back(std::move(Cell));
        }
  }
  uint64_t EventsPerPass = 0;
  for (const ThroughputCell &C : Cells)
    EventsPerPass += C.Trace->Buf.events();
  std::printf("throughput: %zu cells, %zu unique traces, %llu events/pass, "
              "scale=%.2f\n",
              Cells.size(), Traces.size(),
              static_cast<unsigned long long>(EventsPerPass),
              scaleFromEnv());

  // Phase 2: per-cell references from per-event dispatch (the pre-
  // batching path), then prove every fast mode is bit-identical to it.
  std::vector<CellReference> Refs(Cells.size());
  for (size_t I = 0; I != Cells.size(); ++I) {
    sim::MemorySystem Mem(Cells[I].Opts.Machine);
    if (!trace::replayPerEvent(Cells[I].Trace->Buf, Mem))
      reportFailure("per-event replay decode error: " + Cells[I].Sig);
    Refs[I].Cycles = Mem.cycles();
    Refs[I].Mem = Mem.stats();
    Refs[I].Sites = Mem.siteStats();
  }
  for (size_t I = 0; I != Cells.size(); ++I) {
    sim::MemorySystem Mem(Cells[I].Opts.Machine);
    if (!trace::replay(Cells[I].Trace->Buf, Mem) ||
        !matchesReference(Mem, Refs[I]))
      reportFailure("batched replay diverges from per-event dispatch: " +
                    Cells[I].Sig);
  }
  for (bool UseMmap : {false, true}) {
    harness::TraceCache Cache(0, SpillDir, UseMmap);
    for (size_t I = 0; I != Cells.size(); ++I) {
      auto E = Cache.lookup(Cells[I].Sig);
      sim::MemorySystem Mem(Cells[I].Opts.Machine);
      if (!E || !trace::replay(E->Buf, Mem) || !matchesReference(Mem, Refs[I]))
        reportFailure(std::string("spill replay (") +
                      (UseMmap ? "mmap" : "read") +
                      ") diverges from per-event dispatch: " + Cells[I].Sig);
    }
  }

  // Phase 3: rates. per_event is the "before" column (one virtual sink
  // call and token-at-a-time decode per event); batched is the "after";
  // the spill modes add the per-process reload cost on top of batched
  // (heap copy vs zero-copy MAP_SHARED mmap).
  std::printf("replay throughput (min %.1f s per mode):\n", MinSecs);
  ModeResult PerEvent = measureMode(
      "per_event", Cells.size(), EventsPerPass, MinSecs, [&] {
        for (const ThroughputCell &C : Cells) {
          sim::MemorySystem Mem(C.Opts.Machine);
          trace::replayPerEvent(C.Trace->Buf, Mem);
        }
      });
  ModeResult Batched = measureMode(
      "batched", Cells.size(), EventsPerPass, MinSecs, [&] {
        for (const ThroughputCell &C : Cells) {
          sim::MemorySystem Mem(C.Opts.Machine);
          trace::replay(C.Trace->Buf, Mem);
        }
      });
  ModeResult SpillRead = measureMode(
      "spill_read", Cells.size(), EventsPerPass, MinSecs, [&] {
        harness::TraceCache Cache(0, SpillDir, /*UseMmap=*/false);
        for (const ThroughputCell &C : Cells) {
          auto E = Cache.lookup(C.Sig);
          sim::MemorySystem Mem(C.Opts.Machine);
          trace::replay(E->Buf, Mem);
        }
      });
  ModeResult SpillMmap = measureMode(
      "spill_mmap", Cells.size(), EventsPerPass, MinSecs, [&] {
        harness::TraceCache Cache(0, SpillDir, /*UseMmap=*/true);
        for (const ThroughputCell &C : Cells) {
          auto E = Cache.lookup(C.Sig);
          sim::MemorySystem Mem(C.Opts.Machine);
          trace::replay(E->Buf, Mem);
        }
      });

  double BatchedSpeedup =
      PerEvent.CellsPerSec > 0 ? Batched.CellsPerSec / PerEvent.CellsPerSec
                               : 0;
  double MmapSpeedup = SpillRead.CellsPerSec > 0
                           ? SpillMmap.CellsPerSec / SpillRead.CellsPerSec
                           : 0;
  std::printf("throughput: batched replay is %.2fx per-event dispatch; "
              "mmap spill reload is %.2fx heap-read reload\n",
              BatchedSpeedup, MmapSpeedup);
  if (obs::enabled()) {
    obs::stats()
        .counter("spf_throughput_events_replayed_total")
        .inc(EventsPerPass *
             (PerEvent.Passes + Batched.Passes + SpillRead.Passes +
              SpillMmap.Passes));
  }

  if (!JsonPath.empty()) {
    std::ofstream OS(JsonPath, std::ios::trunc);
    if (!OS) {
      reportFailure("cannot write throughput JSON to " + JsonPath);
    } else {
      harness::JsonWriter J(OS);
      J.beginObject();
      J.key("schema").value("spf-bench-throughput-v1");
      J.key("scale").value(scaleFromEnv());
      J.key("cells").value(static_cast<uint64_t>(Cells.size()));
      J.key("unique_traces").value(static_cast<uint64_t>(Traces.size()));
      J.key("events_per_pass").value(EventsPerPass);
      J.key("modes");
      J.beginObject();
      writeModeJson(J, "per_event", PerEvent);
      writeModeJson(J, "batched", Batched);
      writeModeJson(J, "spill_read", SpillRead);
      writeModeJson(J, "spill_mmap", SpillMmap);
      J.endObject();
      J.key("speedup");
      J.beginObject();
      J.key("batched_vs_per_event").value(BatchedSpeedup);
      J.key("spill_mmap_vs_read").value(MmapSpeedup);
      J.endObject();
      J.endObject();
      OS << '\n';
      std::printf("throughput JSON: %s\n", JsonPath.c_str());
    }
  }

  std::error_code EC;
  std::filesystem::remove_all(SpillDir, EC);
  return exitCode();
}

} // namespace

int main(int argc, char **argv) {
  init(argc, argv);
  std::string JsonPath = "sweep_report.json";
  std::string WorkloadCsv;
  bool InjectFailure = false;
  bool Throughput = false;
  std::string ThroughputJson = "BENCH_sweep_throughput.json";
  double ThroughputSecs = 1.0;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (A.rfind("--json=", 0) == 0)
      JsonPath = A.substr(7);
    else if (A == "--workloads" && I + 1 < argc)
      WorkloadCsv = argv[++I];
    else if (A.rfind("--workloads=", 0) == 0)
      WorkloadCsv = A.substr(12);
    else if (A == "--inject-self-check-failure")
      InjectFailure = true;
    else if (A == "--throughput")
      Throughput = true;
    else if (A == "--throughput-json" && I + 1 < argc)
      ThroughputJson = argv[++I];
    else if (A.rfind("--throughput-json=", 0) == 0)
      ThroughputJson = A.substr(18);
    else if (A == "--throughput-secs" && I + 1 < argc)
      ThroughputSecs = std::atof(argv[++I]);
    else if (A.rfind("--throughput-secs=", 0) == 0)
      ThroughputSecs = std::atof(A.c_str() + 18);
  }
  unsigned Jobs = cli().Jobs;

  // --machine/--machine-file select machines for a prefetch-source sweep
  // (none/sw/hw/combined per workload); --hw-prefetch overrides every
  // selected machine's hardware prefetcher kind. Without a machine
  // selection the classic Pentium4+AthlonMP algorithm sweep runs.
  std::optional<sim::HwPrefetchKind> HwOverride;
  std::vector<sim::MachineConfig> Machines =
      machinesFromArgs(argc, argv, &HwOverride);
  const bool ModeSweep = !Machines.empty();

  std::vector<const WorkloadSpec *> Specs = selectWorkloads(WorkloadCsv);
  if (Specs.empty()) {
    reportFailure("no workloads selected");
    return exitCode();
  }

  if (Throughput)
    return runThroughput(Specs, ThroughputJson,
                         ThroughputSecs > 0 ? ThroughputSecs : 1.0);

  // Deliberately failing cell (regression coverage for the nonzero-exit
  // contract): jess with its expected return value corrupted. Must
  // outlive the plan, which stores the spec by pointer.
  WorkloadSpec Injected;
  if (InjectFailure) {
    Injected = *findWorkload("jess");
    Injected.Name = "jess<injected>";
    std::function<BuiltWorkload(const WorkloadConfig &)> Orig =
        Injected.Build;
    Injected.Build = [Orig](const WorkloadConfig &Cfg) {
      BuiltWorkload W = Orig(Cfg);
      W.Expected = W.Expected ? *W.Expected + 1 : 1;
      return W;
    };
  }

  harness::ExperimentPlan Plan;
  const std::vector<Algorithm> Algos{
      Algorithm::Baseline, Algorithm::Inter, Algorithm::InterIntra};
  const std::vector<harness::PrefetchSources> Modes{
      harness::PrefetchSources::None, harness::PrefetchSources::SwOnly,
      harness::PrefetchSources::HwOnly, harness::PrefetchSources::Combined};
  std::vector<unsigned> P4Cells, AthlonCells;
  std::vector<unsigned> MachineFirstCell;
  if (ModeSweep) {
    for (const sim::MachineConfig &M : Machines)
      MachineFirstCell.push_back(
          Plan.addModeSweep(Specs, Modes, {M}, benchConfig(),
                            "machine:" + M.Name)
              .front());
  } else {
    sim::MachineConfig P4 = *sim::MachineConfig::byName("pentium4");
    sim::MachineConfig Athlon = *sim::MachineConfig::byName("athlonmp");
    if (HwOverride) {
      P4.HwPrefetch = *HwOverride;
      Athlon.HwPrefetch = *HwOverride;
    }
    P4Cells = Plan.addSweep(Specs, Algos, {P4}, benchConfig(), "p4");
    AthlonCells =
        Plan.addSweep(Specs, Algos, {Athlon}, benchConfig(), "athlon");
  }
  if (InjectFailure) {
    harness::ExperimentCell Cell;
    Cell.Group = "injected";
    Cell.Spec = &Injected;
    Cell.Opt.Config = benchConfig();
    Cell.Opt.Config.Scale = std::min(Cell.Opt.Config.Scale, 0.05);
    Cell.Opt.Algo = Algorithm::Baseline;
    Plan.add(std::move(Cell));
  }

  // --epochs/--gc-variant/--governor/--phase-change season every planned
  // cell; with all four at their defaults this is a no-op and the sweep
  // is byte-identical to the classic single-epoch run.
  AdaptationKnobs Adapt = adaptationFromArgs(argc, argv);
  for (harness::ExperimentCell &C : Plan.cells()) {
    Adapt.applyTo(C.Opt);
    // --timeline-every N / SPF_TIMELINE: sample the cycle attribution
    // in every cell (0, the default, keeps the report byte-identical).
    C.Opt.TimelineEvery = cli().TimelineEvery;
  }
  if (Adapt.Epochs > 1 || Adapt.Governor)
    std::printf("sweep: epochs=%u gc-variant=%s governor=%s%s\n",
                Adapt.Epochs, vm::gcVariantName(Adapt.GcVariant),
                Adapt.Governor ? "on" : "off",
                Adapt.PhaseChange ? " phase-change" : "");

  if (ModeSweep)
    std::printf("sweep: %zu cells (%zu workloads x %zu prefetch modes x "
                "%zu machine(s)) on %u worker(s), scale=%.2f\n",
                Plan.size(), Specs.size(), Modes.size(), Machines.size(),
                Jobs, scaleFromEnv());
  else
    std::printf("sweep: %zu cells (%zu workloads x %zu algorithms x 2 "
                "machines) on %u worker(s), scale=%.2f\n",
                Plan.size(), Specs.size(), Algos.size(), Jobs,
                scaleFromEnv());

  auto Start = std::chrono::steady_clock::now();
  harness::ExperimentResult Result = runPlanCli(Plan);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();
  reportPlanFailures(Result);

  if (!Result.JournalPath.empty())
    std::printf("journal: %s — %u cell(s) grafted from a previous run, "
                "%u appended\n",
                Result.JournalPath.c_str(), Result.JournalGrafted,
                Result.JournalAppended);

  // Chaos-run visibility: cells that needed retries or never produced a
  // result. Transient quarantines are not failures (the harness's fault
  // containment working as intended), but they must never be silent.
  if (!Result.Quarantine.empty()) {
    std::printf("\nquarantine: %zu cell(s)\n", Result.Quarantine.size());
    for (const harness::QuarantineRecord &Q : Result.Quarantine) {
      std::printf("  [%u] %-40s %-8s attempts=%u", Q.CellIndex,
                  Q.Tag.c_str(), Q.Kind.c_str(), Q.Attempts);
      if (Q.Signal)
        std::printf(" signal=%d", Q.Signal);
      else if (Q.ExitStatus > 0)
        std::printf(" exit=%d", Q.ExitStatus);
      if (!Q.Error.empty())
        std::printf(" — %s", Q.Error.c_str());
      std::printf("\n");
    }
  }

  if (ModeSweep) {
    for (size_t K = 0; K != Machines.size(); ++K)
      printModeTable(Machines[K], Specs, Modes, Result, MachineFirstCell[K]);
  } else {
    std::vector<WorkloadRuns> P4Rows =
        collectBlock(Result, Specs, P4Cells.front());
    std::vector<WorkloadRuns> AthlonRows =
        collectBlock(Result, Specs, AthlonCells.front());

    printSpeedups("Figure 6: speedup ratios on the Pentium 4", P4Rows);
    printSpeedups("Figure 7: speedup ratios on the Athlon MP", AthlonRows);
    printMpi("Figure 8: L1 cache load MPIs on the Pentium 4", P4Rows,
             &sim::MemoryStats::L1LoadMisses);
    printMpi("Figure 9: L2 cache load MPIs on the Pentium 4", P4Rows,
             &sim::MemoryStats::L2LoadMisses);
    printMpi("Figure 10: DTLB load MPIs on the Pentium 4", P4Rows,
             &sim::MemoryStats::DtlbLoadMisses);
  }

  printCellTimings(Plan, Result);

  if (!writeReportTo(JsonPath, Plan, Result, scaleFromEnv(), Jobs))
    reportFailure("cannot write JSON report to " + JsonPath);
  else if (JsonPath != "-")
    std::printf("\nJSON report: %s\n", JsonPath.c_str());

  if (Result.Interrupted)
    std::printf("sweep: interrupted (%s) — %u of %zu cell(s) skipped; the "
                "report above is a valid partial result\n",
                Result.InterruptReason.c_str(), Result.CellsSkipped,
                Plan.size());
  std::printf("sweep: %zu cells in %.1f s on %u worker(s)%s\n",
              Plan.size(), Seconds, Jobs,
              failureCount() ? " — FAILURES (see stderr)" : ", all checks ok");
  return exitCode();
}
