//===- bench/fig8_l1_mpi.cpp - Figure 8 -----------------------------------===//
///
/// Reproduces Figure 8: "L1 cache load MPIs on the Pentium 4" — L1 load
/// miss events per retired instruction, BASELINE vs INTER+INTRA. Also
/// prints the retired-instruction increase, which the paper reports in
/// the same section (db +9.7%, RayTracer +6.9%, jess +2.2%, others < 2%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Figure 8: L1 cache load MPIs on the Pentium 4 (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-12s %10s %12s %10s\n", "benchmark", "BASELINE",
              "INTER+INTRA", "retired+");
  std::printf("%-12s %10s %12s %10s\n", "---------", "--------",
              "-----------", "--------");

  auto Rows = runAll(machineByNameOrExit("pentium4"), /*WithInter=*/false);
  for (const WorkloadRuns &Row : Rows) {
    double BaseMpi = workloads::perInstruction(Row.Base.Mem.L1LoadMisses,
                                               Row.Base.Retired);
    double OptMpi = workloads::perInstruction(Row.Intra.Mem.L1LoadMisses,
                                              Row.Intra.Retired);
    double RetiredIncrease =
        (static_cast<double>(Row.Intra.Retired) /
             static_cast<double>(Row.Base.Retired) -
         1.0) *
        100.0;
    std::printf("%-12s %10.5f %12.5f %9.1f%%\n", Row.Spec->Name.c_str(),
                BaseMpi, OptMpi, RetiredIncrease);
  }
  return exitCode();
}
