//===- bench/ablation_tlb_priming.cpp - Guarded loads vs hw prefetch ------===//
///
/// Ablation for the paper's Pentium 4 decision: "We used a load
/// instruction guarded by a software exception check for intra-iteration
/// stride prefetching on the Pentium 4 in order to fill a missing DTLB
/// entry" (TLB priming, Sections 3.3/4). Runs db — the most DTLB-bound
/// benchmark — with the dereference/intra path realized as guarded loads
/// vs as ordinary hardware prefetches (which cancel on DTLB misses).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

int main() {
  std::printf("Ablation: TLB priming on the Pentium 4, db (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-22s %12s %12s %12s %10s\n", "intra realization", "cycles",
              "DTLB misses", "cancelled", "speedup");

  const WorkloadSpec *Spec = findWorkload("db");
  RunOptions Base;
  Base.Config = benchConfig();
  Base.Algo = Algorithm::Baseline;
  RunResult RBase = runWorkload(*Spec, Base);
  std::printf("%-22s %12llu %12llu %12s %10s\n", "(baseline)",
              static_cast<unsigned long long>(RBase.CompiledCycles),
              static_cast<unsigned long long>(RBase.Mem.DtlbLoadMisses),
              "-", "-");

  for (bool Guarded : {true, false}) {
    RunOptions Opt;
    Opt.Config = benchConfig();
    Opt.Algo = Algorithm::InterIntra;
    Opt.TunePass = [Guarded](core::PrefetchPassOptions &P) {
      P.Planner.GuardedIntraPrefetch = Guarded;
    };
    RunResult R = runWorkload(*Spec, Opt);
    std::printf("%-22s %12llu %12llu %12llu %+9.1f%%\n",
                Guarded ? "guarded load (paper)" : "hardware prefetch",
                static_cast<unsigned long long>(R.CompiledCycles),
                static_cast<unsigned long long>(R.Mem.DtlbLoadMisses),
                static_cast<unsigned long long>(
                    R.Mem.SwPrefetchesCancelled),
                speedupPercent(RBase, R, Spec->CompiledFraction));
  }
  return 0;
}
