//===- bench/ablation_tlb_priming.cpp - Guarded loads vs hw prefetch ------===//
///
/// Ablation for the paper's Pentium 4 decision: "We used a load
/// instruction guarded by a software exception check for intra-iteration
/// stride prefetching on the Pentium 4 in order to fill a missing DTLB
/// entry" (TLB priming, Sections 3.3/4). Runs db — the most DTLB-bound
/// benchmark — with the dereference/intra path realized as guarded loads
/// vs as ordinary hardware prefetches (which cancel on DTLB misses).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Ablation: TLB priming on the Pentium 4, db (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-22s %12s %12s %12s %10s\n", "intra realization", "cycles",
              "DTLB misses", "cancelled", "speedup");

  const WorkloadSpec *Spec = findWorkload("db");
  harness::ExperimentPlan Plan;

  harness::ExperimentCell Base;
  Base.Group = "ablation:tlb";
  Base.Spec = Spec;
  Base.Opt.Config = benchConfig();
  Base.Opt.Algo = Algorithm::Baseline;
  unsigned BaseIdx = Plan.add(std::move(Base));

  for (bool Guarded : {true, false}) {
    harness::ExperimentCell Cell;
    Cell.Group = "ablation:tlb";
    Cell.Spec = Spec;
    Cell.Opt.Config = benchConfig();
    Cell.Opt.Algo = Algorithm::InterIntra;
    Cell.Opt.TunePass = [Guarded](core::PrefetchPassOptions &P) {
      P.Planner.GuardedIntraPrefetch = Guarded;
    };
    Cell.CheckAgainst = BaseIdx;
    Plan.add(std::move(Cell));
  }
  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);

  const RunResult &RBase = Result.run(BaseIdx);
  std::printf("%-22s %12llu %12llu %12s %10s\n", "(baseline)",
              static_cast<unsigned long long>(RBase.CompiledCycles),
              static_cast<unsigned long long>(RBase.Mem.DtlbLoadMisses),
              "-", "-");
  unsigned I = BaseIdx + 1;
  for (bool Guarded : {true, false}) {
    const RunResult &R = Result.run(I++);
    std::printf("%-22s %12llu %12llu %12llu %+9.1f%%\n",
                Guarded ? "guarded load (paper)" : "hardware prefetch",
                static_cast<unsigned long long>(R.CompiledCycles),
                static_cast<unsigned long long>(R.Mem.DtlbLoadMisses),
                static_cast<unsigned long long>(
                    R.Mem.SwPrefetchesCancelled),
                speedupPercent(RBase, R, Spec->CompiledFraction));
  }
  return exitCode();
}
