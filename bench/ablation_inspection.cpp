//===- bench/ablation_inspection.cpp - Object inspection knobs ------------===//
///
/// Ablations for the inspection parameters the paper sets by fiat:
///
///  * iterations observed ("for example, 20 times") and the majority
///    threshold ("over 75%") — swept on jess, reporting what the pass
///    discovers and generates;
///  * inter-procedural inspection ("might improve the accuracy ... but it
///    would increase the compilation time, requiring the trade-off to be
///    carefully assessed") — compile-time and emission comparison;
///  * Wu's weak/phased stride kinds (classified but unexploited by the
///    paper's algorithm) — emission with ExploitWeakStrides on.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

static RunResult runJess(std::function<void(core::PrefetchPassOptions &)> T) {
  const WorkloadSpec *Spec = findWorkload("jess");
  RunOptions Opt;
  Opt.Config = benchConfig();
  Opt.Config.Scale = std::min(Opt.Config.Scale, 0.3); // Analysis-bound.
  Opt.Algo = Algorithm::InterIntra;
  Opt.TunePass = std::move(T);
  return runWorkload(*Spec, Opt);
}

int main() {
  std::printf("Ablation A: inspection iterations (jess)\n");
  std::printf("%4s %10s %10s %12s\n", "N", "speclds", "prefetch",
              "pass us");
  for (unsigned N : {5u, 10u, 20u, 40u}) {
    RunResult R = runJess([N](core::PrefetchPassOptions &P) {
      P.Inspector.MaxIterations = N;
      P.Stride.MinSamples = std::min(4u, N - 1);
    });
    std::printf("%4u %10u %10u %12.1f\n", N, R.Prefetch.CodeGen.SpecLoads,
                R.Prefetch.CodeGen.Prefetches, R.JitPrefetchUs);
  }

  std::printf("\nAblation B: majority threshold (jess)\n");
  std::printf("%6s %10s %10s\n", "thresh", "speclds", "prefetch");
  for (double T : {0.5, 0.75, 0.9, 1.0}) {
    RunResult R = runJess([T](core::PrefetchPassOptions &P) {
      P.Stride.MajorityThreshold = T;
    });
    std::printf("%6.2f %10u %10u\n", T, R.Prefetch.CodeGen.SpecLoads,
                R.Prefetch.CodeGen.Prefetches);
  }

  std::printf("\nAblation C: inter-procedural inspection (jess)\n");
  std::printf("%-14s %10s %10s %12s\n", "calls", "speclds", "prefetch",
              "pass us");
  for (bool Follow : {false, true}) {
    // Best-of-3 wall time.
    double Best = 1e18;
    RunResult Last;
    for (int I = 0; I != 3; ++I) {
      RunResult R = runJess([Follow](core::PrefetchPassOptions &P) {
        P.Inspector.FollowCalls = Follow;
      });
      if (R.JitPrefetchUs < Best) {
        Best = R.JitPrefetchUs;
        Last = R;
      }
    }
    std::printf("%-14s %10u %10u %12.1f\n",
                Follow ? "followed" : "skipped (paper)",
                Last.Prefetch.CodeGen.SpecLoads,
                Last.Prefetch.CodeGen.Prefetches, Best);
  }

  std::printf("\nAblation D: weak/phased stride exploitation (db, P4)\n");
  std::printf("%-18s %10s %12s\n", "strides", "prefetch", "cycles");
  const WorkloadSpec *Db = findWorkload("db");
  for (bool Weak : {false, true}) {
    RunOptions Opt;
    Opt.Config = benchConfig();
    Opt.Algo = Algorithm::InterIntra;
    Opt.TunePass = [Weak](core::PrefetchPassOptions &P) {
      P.Planner.ExploitWeakStrides = Weak;
    };
    RunResult R = runWorkload(*Db, Opt);
    std::printf("%-18s %10u %12llu\n",
                Weak ? "strong+weak+phased" : "strong only (paper)",
                R.Prefetch.CodeGen.Prefetches,
                static_cast<unsigned long long>(R.CompiledCycles));
  }
  return 0;
}
