//===- bench/ablation_inspection.cpp - Object inspection knobs ------------===//
///
/// Ablations for the inspection parameters the paper sets by fiat:
///
///  * iterations observed ("for example, 20 times") and the majority
///    threshold ("over 75%") — swept on jess, reporting what the pass
///    discovers and generates;
///  * inter-procedural inspection ("might improve the accuracy ... but it
///    would increase the compilation time, requiring the trade-off to be
///    carefully assessed") — compile-time and emission comparison;
///  * Wu's weak/phased stride kinds (classified but unexploited by the
///    paper's algorithm) — emission with ExploitWeakStrides on.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;
using namespace spf::workloads;

/// A jess cell with the ablation's pass tuning applied; the jess kernel
/// is analysis-bound, so its scale is capped.
static harness::ExperimentCell
jessCell(std::function<void(core::PrefetchPassOptions &)> T) {
  harness::ExperimentCell Cell;
  Cell.Group = "ablation:inspection";
  Cell.Spec = findWorkload("jess");
  Cell.Opt.Config = benchConfig();
  Cell.Opt.Config.Scale = std::min(Cell.Opt.Config.Scale, 0.3);
  Cell.Opt.Algo = Algorithm::InterIntra;
  Cell.Opt.TunePass = std::move(T);
  return Cell;
}

int main(int argc, char **argv) {
  init(argc, argv);
  // All four sections share one plan and one worker pool.
  harness::ExperimentPlan Plan;

  const unsigned Iterations[] = {5u, 10u, 20u, 40u};
  for (unsigned N : Iterations)
    Plan.add(jessCell([N](core::PrefetchPassOptions &P) {
      P.Inspector.MaxIterations = N;
      P.Stride.MinSamples = std::min(4u, N - 1);
    }));

  const double Thresholds[] = {0.5, 0.75, 0.9, 1.0};
  for (double T : Thresholds)
    Plan.add(jessCell([T](core::PrefetchPassOptions &P) {
      P.Stride.MajorityThreshold = T;
    }));

  const unsigned FollowRepeats = 3; // Best-of-3 wall time.
  for (bool Follow : {false, true})
    for (unsigned I = 0; I != FollowRepeats; ++I)
      Plan.add(jessCell([Follow](core::PrefetchPassOptions &P) {
        P.Inspector.FollowCalls = Follow;
      }));

  for (bool Weak : {false, true}) {
    harness::ExperimentCell Cell;
    Cell.Group = "ablation:inspection";
    Cell.Spec = findWorkload("db");
    Cell.Opt.Config = benchConfig();
    Cell.Opt.Algo = Algorithm::InterIntra;
    Cell.Opt.TunePass = [Weak](core::PrefetchPassOptions &P) {
      P.Planner.ExploitWeakStrides = Weak;
    };
    Plan.add(std::move(Cell));
  }

  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);
  unsigned I = 0;

  std::printf("Ablation A: inspection iterations (jess)\n");
  std::printf("%4s %10s %10s %12s\n", "N", "speclds", "prefetch",
              "pass us");
  for (unsigned N : Iterations) {
    const RunResult &R = Result.run(I++);
    std::printf("%4u %10u %10u %12.1f\n", N, R.Prefetch.CodeGen.SpecLoads,
                R.Prefetch.CodeGen.Prefetches, R.JitPrefetchUs);
  }

  std::printf("\nAblation B: majority threshold (jess)\n");
  std::printf("%6s %10s %10s\n", "thresh", "speclds", "prefetch");
  for (double T : Thresholds) {
    const RunResult &R = Result.run(I++);
    std::printf("%6.2f %10u %10u\n", T, R.Prefetch.CodeGen.SpecLoads,
                R.Prefetch.CodeGen.Prefetches);
  }

  std::printf("\nAblation C: inter-procedural inspection (jess)\n");
  std::printf("%-14s %10s %10s %12s\n", "calls", "speclds", "prefetch",
              "pass us");
  for (bool Follow : {false, true}) {
    double Best = 1e18;
    RunResult Last;
    for (unsigned R = 0; R != FollowRepeats; ++R) {
      const RunResult &Res = Result.run(I++);
      if (Res.JitPrefetchUs < Best) {
        Best = Res.JitPrefetchUs;
        Last = Res;
      }
    }
    std::printf("%-14s %10u %10u %12.1f\n",
                Follow ? "followed" : "skipped (paper)",
                Last.Prefetch.CodeGen.SpecLoads,
                Last.Prefetch.CodeGen.Prefetches, Best);
  }

  std::printf("\nAblation D: weak/phased stride exploitation (db, P4)\n");
  std::printf("%-18s %10s %12s\n", "strides", "prefetch", "cycles");
  for (bool Weak : {false, true}) {
    const RunResult &R = Result.run(I++);
    std::printf("%-18s %10u %12llu\n",
                Weak ? "strong+weak+phased" : "strong only (paper)",
                R.Prefetch.CodeGen.Prefetches,
                static_cast<unsigned long long>(R.CompiledCycles));
  }
  return exitCode();
}
