//===- bench/fig7_speedup_athlon.cpp - Figure 7 ---------------------------===//
///
/// Reproduces Figure 7: "Speedup ratios on the Athlon MP".
///
/// Paper reference points (Athlon): db +25.1% (INTER ~0), Euler +14.0%
/// (both), jess +2.9%, MolDyn small positive for both, RayTracer slightly
/// degraded by INTER+INTRA, compress/javac/Search ~0.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Figure 7: speedup ratios on the Athlon MP (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-12s %10s %12s\n", "benchmark", "INTER", "INTER+INTRA");
  std::printf("%-12s %10s %12s\n", "---------", "-----", "-----------");

  auto Rows = runAll(machineByNameOrExit("athlonmp"), /*WithInter=*/true);
  for (const WorkloadRuns &Row : Rows)
    std::printf("%-12s %9.1f%% %11.1f%%\n", Row.Spec->Name.c_str(),
                speedup(Row, Row.Inter), speedup(Row, Row.Intra));
  return exitCode();
}
