//===- bench/fig10_dtlb_mpi.cpp - Figure 10 -------------------------------===//
///
/// Reproduces Figure 10: "DTLB load MPIs on the Pentium 4" — DTLB load
/// miss events per retired instruction, BASELINE vs INTER+INTRA.
///
/// Paper narrative: the algorithm greatly decreases the DTLB load MPIs of
/// RayTracer and db (via guarded-load TLB priming) and slightly decreases
/// jess's — "it suggests the importance of reducing the DTLB misses on
/// the Pentium 4."
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Figure 10: DTLB load MPIs on the Pentium 4 (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-12s %10s %12s\n", "benchmark", "BASELINE", "INTER+INTRA");
  std::printf("%-12s %10s %12s\n", "---------", "--------", "-----------");

  auto Rows = runAll(machineByNameOrExit("pentium4"), /*WithInter=*/false);
  for (const WorkloadRuns &Row : Rows)
    std::printf("%-12s %10.5f %12.5f\n", Row.Spec->Name.c_str(),
                workloads::perInstruction(Row.Base.Mem.DtlbLoadMisses,
                                          Row.Base.Retired),
                workloads::perInstruction(Row.Intra.Mem.DtlbLoadMisses,
                                          Row.Intra.Retired));
  return exitCode();
}
