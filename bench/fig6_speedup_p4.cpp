//===- bench/fig6_speedup_p4.cpp - Figure 6 -------------------------------===//
///
/// Reproduces Figure 6: "Speedup ratios on the Pentium 4" — the percentage
/// speedup of INTER and INTER+INTRA over the no-prefetching baseline for
/// the 12 benchmarks, under the mixed-mode total-time model.
///
/// Paper reference points (P4): db +18.9% (INTER ~0), Euler +15.4% (both),
/// jess +2.0%, RayTracer positive for INTER+INTRA, mpegaudio slightly
/// negative, compress/javac/Search ~0.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf("Figure 6: speedup ratios on the Pentium 4 (scale=%.2f)\n",
              scaleFromEnv());
  std::printf("%-12s %10s %12s\n", "benchmark", "INTER", "INTER+INTRA");
  std::printf("%-12s %10s %12s\n", "---------", "-----", "-----------");

  auto Rows = runAll(machineByNameOrExit("pentium4"), /*WithInter=*/true);
  for (const WorkloadRuns &Row : Rows)
    std::printf("%-12s %9.1f%% %11.1f%%\n", Row.Spec->Name.c_str(),
                speedup(Row, Row.Inter), speedup(Row, Row.Intra));
  return exitCode();
}
