//===- bench/fig11_compile_time.cpp - Figure 11 ---------------------------===//
///
/// Reproduces Figure 11: "Compilation time for prefetching and total JIT
/// compilation time". Left column: additional compilation time of the
/// prefetching algorithm (INTER+INTRA) as a percentage of the total JIT
/// compilation time — the paper measures < 3.0% everywhere. Right column:
/// total JIT compilation time as a fraction of total execution time
/// (paper: < 13%); here the execution side is the simulated cycle count
/// converted at the Pentium 4's 2 GHz, so the ratio is a modeled value.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace spf;
using namespace spf::bench;

int main(int argc, char **argv) {
  init(argc, argv);
  std::printf(
      "Figure 11: prefetch compile time / total JIT time (scale=%.2f)\n",
      scaleFromEnv());
  std::printf("%-12s %14s %16s %10s %12s\n", "benchmark",
              "prefetch/JIT", "JIT/total-exec", "JIT (ms)", "exec (ms)");
  std::printf("%-12s %14s %16s %10s %12s\n", "---------", "------------",
              "--------------", "--------", "---------");
  std::printf("(exec is simulated time at 2 GHz; our problem sizes are\n"
              " ~100x smaller than the 2003 originals, so the right-hand\n"
              " ratio overstates the paper's <13%% JIT share)\n");

  // Compile-time measurements are wall-clock and jittery; take the best
  // of a few compilations, as the paper takes best run times. (With
  // --jobs > 1, concurrent cells can inflate individual wall-clock
  // timings; best-of-N absorbs that, but use --jobs 1 for the recorded
  // EXPERIMENTS.md numbers.)
  const unsigned Repeats = 5;
  harness::ExperimentPlan Plan;
  for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads()) {
    for (unsigned R = 0; R != Repeats; ++R) {
      harness::ExperimentCell Cell;
      Cell.Group = "fig11";
      Cell.Spec = &Spec;
      Cell.Opt.Machine = machineByNameOrExit("pentium4");
      Cell.Opt.Algo = workloads::Algorithm::InterIntra;
      Cell.Opt.Config = benchConfig();
      Plan.add(std::move(Cell));
    }
  }
  harness::ExperimentResult Result = runPlanCli(Plan);
  reportPlanFailures(Result);

  unsigned I = 0;
  for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads()) {
    double BestRatio = 1e9;
    workloads::RunResult Last;
    for (unsigned R = 0; R != Repeats; ++R, ++I) {
      const workloads::RunResult &Res = Result.run(I);
      if (Res.JitTotalUs > 0) {
        double Ratio = Res.JitPrefetchUs / Res.JitTotalUs;
        if (Ratio < BestRatio) {
          BestRatio = Ratio;
          Last = Res;
        }
      }
    }
    // Simulated execution time at 2 GHz, under the mixed-mode model.
    double TotalCycles =
        workloads::totalTime(Last.CompiledCycles, Last.CompiledCycles,
                             Spec.CompiledFraction);
    double ExecUs = TotalCycles / 2000.0; // 2000 cycles per microsecond.
    double JitShare = Last.JitTotalUs / (Last.JitTotalUs + ExecUs) * 100.0;
    std::printf("%-12s %13.1f%% %15.1f%% %10.2f %12.2f\n",
                Spec.Name.c_str(), BestRatio * 100.0, JitShare,
                Last.JitTotalUs / 1000.0, ExecUs / 1000.0);
  }
  return exitCode();
}
