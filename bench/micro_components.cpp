//===- bench/micro_components.cpp - Component microbenchmarks -------------===//
///
/// google-benchmark microbenches for the substrate components: cache and
/// TLB access throughput, interpreter dispatch rate, object-inspection
/// cost (the "ultra-lightweight" claim: inspecting a method is orders of
/// magnitude cheaper than running it), and the full prefetch pass.
///
//===----------------------------------------------------------------------===//

#include "core/PrefetchPass.h"
#include "exec/Interpreter.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace spf;

namespace {

void BM_CacheAccess(benchmark::State &State) {
  sim::Cache C(sim::CacheParams{256 * 1024, 64, 8});
  uint64_t Addr = 0;
  uint64_t Now = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.access(Addr, Now++));
    Addr += 72; // Object-pitch stream.
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_TlbAccess(benchmark::State &State) {
  sim::Tlb T(64, 4096);
  uint64_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(T.access(Addr));
    Addr += 296;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TlbAccess);

void BM_MemorySystemLoad(benchmark::State &State) {
  sim::MemorySystem Mem(*sim::MachineConfig::byName("pentium4"));
  uint64_t Addr = 0x100000000ull;
  for (auto _ : State) {
    Mem.load(Addr);
    Addr += 296;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MemorySystemLoad);

/// A ready-to-run jess world shared by the heavier benches.
struct JessBench {
  workloads::BuiltWorkload W;
  ir::Method *Find;

  JessBench() {
    workloads::WorkloadConfig Cfg;
    Cfg.Scale = 0.05;
    W = workloads::findWorkload("jess")->Build(Cfg);
    Find = W.Module->findMethod("Node2.findInMemory");
  }
};

void BM_InterpreterDispatch(benchmark::State &State) {
  JessBench J;
  sim::MemorySystem Mem(*sim::MachineConfig::byName("pentium4"));
  exec::Interpreter Interp(*J.W.Heap, Mem, &J.W.Roots);
  const auto &Args = J.W.CompileUnits[0].Args;
  uint64_t Instr = 0;
  for (auto _ : State) {
    uint64_t Before = Interp.stats().Retired;
    benchmark::DoNotOptimize(Interp.run(J.Find, Args));
    Instr += Interp.stats().Retired - Before;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instr));
}
BENCHMARK(BM_InterpreterDispatch);

void BM_ObjectInspection(benchmark::State &State) {
  // The paper's headline compile-time claim rests on this being cheap:
  // 20 partially interpreted iterations per loop.
  JessBench J;
  J.Find->recomputePreds();
  analysis::DominatorTree DT(J.Find);
  analysis::LoopInfo LI(J.Find, DT);
  analysis::Loop *Outer = LI.topLevelLoops()[0];
  core::LoadDependenceGraph G(Outer, LI);
  core::ObjectInspector Insp(*J.W.Heap, LI);
  const auto &Args = J.W.CompileUnits[0].Args;
  for (auto _ : State) {
    core::InspectionResult R = Insp.inspect(J.Find, Args, Outer, G);
    benchmark::DoNotOptimize(R.IterationsObserved);
  }
}
BENCHMARK(BM_ObjectInspection);

void BM_LoadDependenceGraphBuild(benchmark::State &State) {
  JessBench J;
  J.Find->recomputePreds();
  analysis::DominatorTree DT(J.Find);
  analysis::LoopInfo LI(J.Find, DT);
  analysis::Loop *Outer = LI.topLevelLoops()[0];
  for (auto _ : State) {
    core::LoadDependenceGraph G(Outer, LI);
    benchmark::DoNotOptimize(G.nodes().size());
  }
}
BENCHMARK(BM_LoadDependenceGraphBuild);

void BM_FullPrefetchPass(benchmark::State &State) {
  // Fresh method each run (the pass mutates the IR); manual timing keeps
  // the workload construction out of the measurement.
  for (auto _ : State) {
    workloads::WorkloadConfig Cfg;
    Cfg.Scale = 0.05;
    workloads::BuiltWorkload W = workloads::findWorkload("jess")->Build(Cfg);
    ir::Method *Find = W.Module->findMethod("Node2.findInMemory");
    core::PrefetchPassOptions Opts = workloads::passOptionsFor(
        *sim::MachineConfig::byName("pentium4"), core::PrefetchMode::InterIntra);
    core::PrefetchPass Pass(*W.Heap, Opts);
    auto Start = std::chrono::steady_clock::now();
    auto R = Pass.run(Find, W.CompileUnits[0].Args);
    auto End = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(R.CodeGen.Prefetches);
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
  }
}
BENCHMARK(BM_FullPrefetchPass)->UseManualTime();

} // namespace

BENCHMARK_MAIN();
