//===- tools/spf-report.cpp - Report inspection and regression gating ----===//
///
/// \file
/// The report toolchain the CI gates run through:
///
///   spf-report show <report.json>
///     CPI-stack table (one row per cell with a cycle_breakdown) and the
///     per-site top-K stall attribution tables.
///
///   spf-report validate <report.json>...
///   spf-report validate --prom <metrics.txt>...
///     Structural validation: recognized schema, required keys, the
///     cycle-attribution sum invariant on every breakdown and timeline
///     sample, Prometheus text-format conformance. Exit 1 on the first
///     violation. `--validate` is accepted as an alias for the
///     subcommand spelling.
///
///   spf-report diff <baseline.json> <fresh.json> [thresholds]
///     Regression gate through harness::diffReports — the same
///     comparator bench/adaptation --check-against uses — with
///     configurable thresholds. Exit 1 when any threshold trips (or the
///     reports are not comparable), 0 otherwise.
///
//===----------------------------------------------------------------------===//

#include "harness/JsonReader.h"
#include "harness/ReportDiff.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spf;
using namespace spf::harness;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: spf-report show <report.json>\n"
      "       spf-report validate [--prom] <file>...\n"
      "       spf-report diff <baseline.json> <fresh.json> [options]\n"
      "\n"
      "diff options (defaults reproduce the CI gates):\n"
      "  --max-throughput-drop-pct <P>   batched cells/sec may drop at most\n"
      "                                  P%% below baseline (default 20)\n"
      "  --min-batched-speedup <S>       floor on batched_vs_per_event\n"
      "                                  (default 1.0)\n"
      "  --max-recovery-drop <D>         adaptation recovery may drop at\n"
      "                                  most D below baseline (default 0.2)\n"
      "  --max-cycles-increase-pct <P>   per-cell cycles may grow at most\n"
      "                                  P%% over baseline (default 2)\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    std::fprintf(stderr, "spf-report: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  Out = SS.str();
  return true;
}

std::unique_ptr<JsonValue> loadJson(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text))
    return nullptr;
  std::string Error;
  std::unique_ptr<JsonValue> V = JsonValue::parse(Text, &Error);
  if (!V)
    std::fprintf(stderr, "spf-report: %s: %s\n", Path.c_str(),
                 Error.c_str());
  return V;
}

double parseDoubleArg(const char *Flag, const char *S) {
  char *End = nullptr;
  double V = std::strtod(S, &End);
  if (End == S || *End != '\0') {
    std::fprintf(stderr, "spf-report: %s: expected a number, got '%s'\n",
                 Flag, S);
    std::exit(2);
  }
  return V;
}

// -- show ----------------------------------------------------------------

/// Percentage cell, padded for the CPI-stack table.
std::string pct(uint64_t Part, uint64_t Whole) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%5.1f",
                Whole ? 100.0 * static_cast<double>(Part) /
                            static_cast<double>(Whole)
                      : 0.0);
  return Buf;
}

int showSweep(const JsonValue &V) {
  const JsonValue &Cells = V.get("cells");
  if (Cells.kind() != JsonValue::Kind::Array) {
    std::fprintf(stderr, "spf-report: no cells array\n");
    return 2;
  }
  // Column set: union of level keys across cells (machines differ).
  unsigned MaxLevels = 0;
  for (const JsonValue &C : Cells.array())
    if (C.has("cycle_breakdown")) {
      unsigned L = 1;
      while (C.get("cycle_breakdown").has("l" + std::to_string(L)))
        ++L;
      if (L - 1 > MaxLevels)
        MaxLevels = L - 1;
    }
  if (!MaxLevels) {
    std::printf("no cycle_breakdown in this report (run the sweep with "
                "--timeline-every N)\n");
    return 0;
  }
  std::printf("CPI stack (%% of simulated cycles)\n");
  std::printf("%-44s %12s %5s %5s", "cell", "cycles", "cmp", "gc");
  for (unsigned L = 1; L <= MaxLevels; ++L)
    std::printf("   l%u ", L);
  std::printf("%5s %5s %5s %5s %5s\n", "wait", "mem", "xlat", "gflt", "pfi");
  for (const JsonValue &C : Cells.array()) {
    if (!C.has("cycle_breakdown"))
      continue;
    const JsonValue &B = C.get("cycle_breakdown");
    uint64_t Total = B.getU64("total");
    std::string Id = C.getString("group") + "/" + C.getString("workload") +
                     "/" + C.getString("algorithm");
    std::printf("%-44s %12llu %s %s", Id.c_str(),
                static_cast<unsigned long long>(Total),
                pct(B.getU64("compute"), Total).c_str(),
                pct(B.getU64("gc_pause"), Total).c_str());
    for (unsigned L = 1; L <= MaxLevels; ++L)
      std::printf(" %s", pct(B.getU64("l" + std::to_string(L)), Total).c_str());
    std::printf(" %s %s %s %s %s\n", pct(B.getU64("wait"), Total).c_str(),
                pct(B.getU64("mem_penalty"), Total).c_str(),
                pct(B.getU64("translation"), Total).c_str(),
                pct(B.getU64("guard_fault"), Total).c_str(),
                pct(B.getU64("prefetch_issue"), Total).c_str());
  }
  for (const JsonValue &C : Cells.array()) {
    if (!C.has("top_sites") ||
        C.get("top_sites").kind() != JsonValue::Kind::Array ||
        C.get("top_sites").array().empty())
      continue;
    std::printf("\ntop stall sites: %s/%s/%s\n", C.getString("group").c_str(),
                C.getString("workload").c_str(),
                C.getString("algorithm").c_str());
    std::printf("  %6s %12s %14s %12s %12s\n", "site", "loads",
                "stall_cycles", "l1_misses", "dtlb_misses");
    for (const JsonValue &S : C.get("top_sites").array())
      std::printf("  %6llu %12llu %14llu %12llu %12llu\n",
                  static_cast<unsigned long long>(S.getU64("site")),
                  static_cast<unsigned long long>(S.getU64("loads")),
                  static_cast<unsigned long long>(S.getU64("stall_cycles")),
                  static_cast<unsigned long long>(S.getU64("l1_misses")),
                  static_cast<unsigned long long>(S.getU64("dtlb_misses")));
  }
  return 0;
}

int cmdShow(const std::vector<std::string> &Args) {
  if (Args.size() != 1)
    return usage();
  std::unique_ptr<JsonValue> V = loadJson(Args[0]);
  if (!V)
    return 2;
  std::string Schema = V->getString("schema");
  if (Schema == "spf-sweep-v2")
    return showSweep(*V);
  // Non-sweep schemas: validation doubles as the useful summary.
  std::string Error;
  if (!validateReport(*V, &Error)) {
    std::fprintf(stderr, "spf-report: %s: %s\n", Args[0].c_str(),
                 Error.c_str());
    return 1;
  }
  std::printf("%s: valid %s report (nothing to show; use diff)\n",
              Args[0].c_str(), Schema.c_str());
  return 0;
}

// -- validate ------------------------------------------------------------

int cmdValidate(const std::vector<std::string> &Args) {
  bool Prom = false;
  std::vector<std::string> Files;
  for (const std::string &A : Args) {
    if (A == "--prom")
      Prom = true;
    else
      Files.push_back(A);
  }
  if (Files.empty())
    return usage();
  for (const std::string &Path : Files) {
    std::string Error;
    bool Ok;
    if (Prom) {
      std::string Text;
      if (!readFile(Path, Text))
        return 2;
      Ok = validatePromText(Text, &Error);
    } else {
      std::unique_ptr<JsonValue> V = loadJson(Path);
      if (!V)
        return 2;
      Ok = validateReport(*V, &Error);
    }
    if (!Ok) {
      std::fprintf(stderr, "spf-report: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    std::printf("%s: ok\n", Path.c_str());
  }
  return 0;
}

// -- diff ----------------------------------------------------------------

int cmdDiff(const std::vector<std::string> &Args) {
  DiffThresholds T;
  std::vector<std::string> Files;
  for (size_t I = 0; I != Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "spf-report: %s: missing value\n", A.c_str());
        std::exit(2);
      }
      return Args[++I].c_str();
    };
    if (A == "--max-throughput-drop-pct")
      T.ThroughputDropFrac = parseDoubleArg(A.c_str(), Next()) / 100.0;
    else if (A == "--min-batched-speedup")
      T.MinBatchedSpeedup = parseDoubleArg(A.c_str(), Next());
    else if (A == "--max-recovery-drop")
      T.RecoveryDrop = parseDoubleArg(A.c_str(), Next());
    else if (A == "--max-cycles-increase-pct")
      T.CyclesIncreaseFrac = parseDoubleArg(A.c_str(), Next()) / 100.0;
    else if (!A.empty() && A[0] == '-')
      return usage();
    else
      Files.push_back(A);
  }
  if (Files.size() != 2)
    return usage();
  std::unique_ptr<JsonValue> Ref = loadJson(Files[0]);
  std::unique_ptr<JsonValue> Got = loadJson(Files[1]);
  if (!Ref || !Got)
    return 2;
  DiffResult D = diffReports(*Ref, *Got, T);
  if (!D.Comparable) {
    std::fprintf(stderr, "spf-report: %s\n", D.Error.c_str());
    return 1;
  }
  std::printf("schema: %s\n", D.Schema.c_str());
  unsigned Regressions = 0;
  for (const DiffFinding &F : D.Findings) {
    if (F.Regression)
      ++Regressions;
    std::printf("%s %-52s ref=%-14g got=%-14g %s\n",
                F.Regression ? "REGRESSION" : "        ok", F.Where.c_str(),
                F.Ref, F.Got, F.Detail.c_str());
  }
  if (D.Findings.empty())
    std::printf("no differences\n");
  std::printf("%u regression%s\n", Regressions, Regressions == 1 ? "" : "s");
  return Regressions ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty())
    return usage();
  std::string Cmd = Args[0];
  Args.erase(Args.begin());
  if (Cmd == "show")
    return cmdShow(Args);
  if (Cmd == "validate" || Cmd == "--validate")
    return cmdValidate(Args);
  if (Cmd == "diff" || Cmd == "--diff")
    return cmdDiff(Args);
  return usage();
}
